// Package semisync implements the semi-synchronous session algorithm
// (Section 5, adapting [4]). Knowing c1 and c2 gives a process two ways to
// certify a session, and it picks the cheaper one from the known constants:
//
//   - Step counting: taking W = floor(c2/c1)+1 of its own steps spans more
//     than c2 time, during which every other process must take a step; so W
//     steps per session need no communication at all. Per-session cost
//     W*c2.
//   - Communicating: confirm each session the way the asynchronous
//     algorithm does. Per-session cost O(log_b n)*c2 in shared memory
//     (relay tree), d2+c2 in message passing.
//
// The resulting running time is the min-expression in Table 1's
// semi-synchronous row. The harness's ablation benches force each mode to
// show the min is real.
package semisync

import (
	"sessionproblem/internal/alg/async"
	"sessionproblem/internal/bounds"
	"sessionproblem/internal/core"
	"sessionproblem/internal/model"
	"sessionproblem/internal/mp"
	"sessionproblem/internal/sm"
	"sessionproblem/internal/timing"
)

// Mode selects how sessions are certified.
type Mode int

// Modes. Auto picks the cheaper of the other two from the model constants.
const (
	Auto Mode = iota
	ForceStepCount
	ForceCommunicate
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case Auto:
		return "auto"
	case ForceStepCount:
		return "step-count"
	case ForceCommunicate:
		return "communicate"
	default:
		return "unknown"
	}
}

// stepsPerSession returns W = floor(c2/c1) + 1, the number of own steps
// whose span must exceed c2.
func stepsPerSession(m timing.Model) int {
	return int(m.C2/m.C1) + 1
}

// SM is the semi-synchronous shared-memory algorithm.
type SM struct {
	mode Mode
}

var _ core.SMAlgorithm = SM{}

// NewSM returns the shared-memory algorithm; mode Auto chooses per the
// known constants.
func NewSM(mode Mode) SM { return SM{mode: mode} }

// Name implements core.SMAlgorithm.
func (a SM) Name() string { return "semi-synchronous(" + a.mode.String() + ")" }

// BuildSM constructs either step-counting ports (no relays) or the
// tree-confirmed system, whichever the mode dictates.
func (a SM) BuildSM(spec core.Spec, m timing.Model) (*sm.System, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if m.C1 <= 0 || m.C2 <= 0 || m.C2.IsInfinite() {
		return nil, errBadModel(m)
	}
	b := spec.B
	if b == 0 {
		b = 2
	}
	w := stepsPerSession(m)
	mode := a.mode
	if mode == Auto {
		if w <= bounds.CommSteps(spec.N, b) {
			mode = ForceStepCount
		} else {
			mode = ForceCommunicate
		}
	}
	if mode == ForceCommunicate {
		specB := spec
		specB.B = b
		return async.NewSM().BuildSM(specB, m)
	}
	// Step counting: every process takes (s-1)*W + 1 port steps and idles.
	sys := &sm.System{B: b}
	for i := 0; i < spec.N; i++ {
		v := model.VarID(i)
		sys.Procs = append(sys.Procs, &stepCounter{v: v, left: (spec.S-1)*w + 1})
		sys.Ports = append(sys.Ports, sm.PortBinding{Var: v, Proc: i})
	}
	return sys, nil
}

// stepCounter takes a fixed number of steps on its own port, then idles.
type stepCounter struct {
	v    model.VarID
	left int
}

func (st *stepCounter) Target() model.VarID { return st.v }

func (st *stepCounter) Step(old sm.Value) sm.Value {
	if st.left == 0 {
		return old
	}
	st.left--
	n, _ := old.(int)
	return n + 1
}

func (st *stepCounter) Idle() bool { return st.left == 0 }

// MP is the semi-synchronous message-passing algorithm.
type MP struct {
	mode Mode
}

var _ core.MPAlgorithm = MP{}

// NewMP returns the message-passing algorithm; mode Auto chooses per the
// known constants.
func NewMP(mode Mode) MP { return MP{mode: mode} }

// Name implements core.MPAlgorithm.
func (a MP) Name() string { return "semi-synchronous(" + a.mode.String() + ")" }

// BuildMP constructs either silent step-counting processes or the
// communicate-mode (asynchronous-style) system.
func (a MP) BuildMP(spec core.Spec, m timing.Model) (*mp.System, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if m.C1 <= 0 || m.C2 <= 0 || m.C2.IsInfinite() {
		return nil, errBadModel(m)
	}
	w := stepsPerSession(m)
	mode := a.mode
	if mode == Auto {
		// Per-session costs: W*c2 for step counting vs d2+c2 for
		// communicating.
		if int64(w)*int64(m.C2) <= int64(m.D2)+int64(m.C2) {
			mode = ForceStepCount
		} else {
			mode = ForceCommunicate
		}
	}
	if mode == ForceCommunicate {
		return async.NewMP().BuildMP(spec, m)
	}
	sys := &mp.System{}
	for i := 0; i < spec.N; i++ {
		sys.Procs = append(sys.Procs, &silentCounter{left: (spec.S-1)*w + 1})
		sys.PortProcs = append(sys.PortProcs, i)
	}
	return sys, nil
}

// silentCounter takes a fixed number of steps without communicating.
type silentCounter struct{ left int }

func (s *silentCounter) Step([]mp.Message) any {
	if s.left > 0 {
		s.left--
	}
	return nil
}

func (s *silentCounter) Idle() bool { return s.left == 0 }

type modelError struct{ m timing.Model }

func errBadModel(m timing.Model) error { return modelError{m: m} }

func (e modelError) Error() string {
	return "semisync: model must have finite 0 < c1 <= c2, got [" +
		e.m.C1.String() + "," + e.m.C2.String() + "]"
}
