package synchronous

import (
	"errors"
	"testing"

	"sessionproblem/internal/core"
	"sessionproblem/internal/sim"
	"sessionproblem/internal/timing"
)

func TestSMExactRunningTime(t *testing.T) {
	for _, tt := range []struct {
		s, n int
		c2   sim.Duration
	}{
		{1, 1, 1}, {2, 2, 3}, {5, 4, 7}, {10, 8, 2}, {16, 3, 5},
	} {
		spec := core.Spec{S: tt.s, N: tt.n, B: 2}
		m := timing.NewSynchronous(tt.c2, 0)
		rep, err := core.RunSM(NewSM(), spec, m, timing.Slow, 1)
		if err != nil {
			t.Fatalf("s=%d n=%d: %v", tt.s, tt.n, err)
		}
		want := sim.Time(int64(tt.s) * int64(tt.c2))
		if rep.Finish != want {
			t.Errorf("s=%d n=%d c2=%v: Finish %v, want %v (= s*c2)", tt.s, tt.n, tt.c2, rep.Finish, want)
		}
		if rep.Sessions != tt.s {
			t.Errorf("s=%d n=%d: sessions %d, want exactly %d", tt.s, tt.n, rep.Sessions, tt.s)
		}
	}
}

func TestMPExactRunningTime(t *testing.T) {
	spec := core.Spec{S: 6, N: 5}
	m := timing.NewSynchronous(4, 9)
	rep, err := core.RunMP(NewMP(), spec, m, timing.Slow, 1)
	if err != nil {
		t.Fatalf("RunMP: %v", err)
	}
	if rep.Finish != 24 {
		t.Errorf("Finish: got %v, want 24 (= s*c2)", rep.Finish)
	}
	if rep.Messages != 0 {
		t.Errorf("synchronous algorithm must not communicate, sent %d", rep.Messages)
	}
}

// TestBreaksUnderPeriodic shows the synchronous algorithm is NOT a periodic
// algorithm: a skewed periodic schedule collapses its middle sessions. This
// is the separation the paper's Table 1 encodes.
func TestBreaksUnderPeriodic(t *testing.T) {
	spec := core.Spec{S: 4, N: 3, B: 2}
	m := timing.NewPeriodic(1, 10, 0)
	_, err := core.RunSM(NewSM(), spec, m, timing.Skewed, 1)
	if !errors.Is(err, core.ErrTooFewSessions) {
		t.Errorf("expected ErrTooFewSessions under skewed periodic schedule, got %v", err)
	}
}

func TestBreaksUnderPeriodicMP(t *testing.T) {
	spec := core.Spec{S: 4, N: 3}
	m := timing.NewPeriodic(1, 10, 5)
	_, err := core.RunMP(NewMP(), spec, m, timing.Skewed, 1)
	if !errors.Is(err, core.ErrTooFewSessions) {
		t.Errorf("expected ErrTooFewSessions under skewed periodic schedule, got %v", err)
	}
}

func TestIdleStability(t *testing.T) {
	spec := core.Spec{S: 3, N: 2, B: 2}
	m := timing.NewSynchronous(2, 0)
	if err := core.ProbeIdleStability(NewSM(), spec, m, timing.Slow, 1); err != nil {
		t.Errorf("idle stability: %v", err)
	}
}

func TestBuildValidatesSpec(t *testing.T) {
	m := timing.NewSynchronous(2, 0)
	if _, err := NewSM().BuildSM(core.Spec{S: 0, N: 1}, m); err == nil {
		t.Error("s=0 accepted")
	}
	if _, err := NewMP().BuildMP(core.Spec{S: 1, N: 0}, m); err == nil {
		t.Error("n=0 accepted")
	}
}

// TestSynchronizedStartSavesOneStep reproduces the paper's conversion note
// 3: [4] assumes all processes take a synchronized first step at time 0
// (one session for free), while this paper's convention makes even the
// first step obey the constraints. Under [4]'s convention the synchronous
// algorithm finishes one c2 earlier.
func TestSynchronizedStartSavesOneStep(t *testing.T) {
	spec := core.Spec{S: 5, N: 3, B: 2}
	base := timing.NewSynchronous(7, 0)

	rep, err := core.RunSM(NewSM(), spec, base, timing.Slow, 1)
	if err != nil {
		t.Fatalf("paper convention: %v", err)
	}
	if rep.Finish != 5*7 {
		t.Errorf("paper convention: finish %v, want s*c2 = 35", rep.Finish)
	}

	repSync, err := core.RunSM(NewSM(), spec, base.WithSynchronizedStart(), timing.Slow, 1)
	if err != nil {
		t.Fatalf("[4] convention: %v", err)
	}
	if repSync.Finish != 4*7 {
		t.Errorf("[4] convention: finish %v, want (s-1)*c2 = 28", repSync.Finish)
	}
	if repSync.Sessions != spec.S {
		t.Errorf("[4] convention: %d sessions", repSync.Sessions)
	}
}

func TestNames(t *testing.T) {
	if NewSM().Name() == "" || NewMP().Name() == "" {
		t.Error("empty algorithm name")
	}
}
