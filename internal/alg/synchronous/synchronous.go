// Package synchronous implements the no-communication algorithm for the
// synchronous model [2]: every port process simply takes s steps at its own
// port and enters an idle state. Lockstep timing (every gap exactly c2)
// makes each wave of i-th steps a session, so no communication is needed —
// this is the baseline that exhibits the synchronous row of Table 1
// (L = U = s*c2).
//
// The algorithm is correct only under the synchronous model; running it
// under any weaker model is expected to violate the session condition, which
// the lower-bound experiments exploit as a "too fast" victim algorithm.
package synchronous

import (
	"sessionproblem/internal/core"
	"sessionproblem/internal/model"
	"sessionproblem/internal/mp"
	"sessionproblem/internal/sm"
	"sessionproblem/internal/timing"
)

// SM is the shared-memory synchronous algorithm.
type SM struct{}

var _ core.SMAlgorithm = SM{}

// NewSM returns the shared-memory synchronous algorithm.
func NewSM() SM { return SM{} }

// Name implements core.SMAlgorithm.
func (SM) Name() string { return "synchronous" }

// BuildSM constructs n port processes, each stepping s times on its own
// port variable.
func (SM) BuildSM(spec core.Spec, _ timing.Model) (*sm.System, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	b := spec.B
	if b == 0 {
		b = 2
	}
	sys := &sm.System{B: b}
	for i := 0; i < spec.N; i++ {
		v := model.VarID(i)
		sys.Procs = append(sys.Procs, &stepper{v: v, left: spec.S})
		sys.Ports = append(sys.Ports, sm.PortBinding{Var: v, Proc: i})
	}
	return sys, nil
}

// stepper takes a fixed number of steps on one variable, then idles.
type stepper struct {
	v    model.VarID
	left int
}

func (st *stepper) Target() model.VarID { return st.v }

func (st *stepper) Step(old sm.Value) sm.Value {
	if st.left == 0 {
		return old
	}
	st.left--
	n, _ := old.(int)
	return n + 1
}

func (st *stepper) Idle() bool { return st.left == 0 }

// MP is the message-passing synchronous algorithm.
type MP struct{}

var _ core.MPAlgorithm = MP{}

// NewMP returns the message-passing synchronous algorithm.
func NewMP() MP { return MP{} }

// Name implements core.MPAlgorithm.
func (MP) Name() string { return "synchronous" }

// BuildMP constructs n silent port processes, each stepping s times.
func (MP) BuildMP(spec core.Spec, _ timing.Model) (*mp.System, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	sys := &mp.System{}
	for i := 0; i < spec.N; i++ {
		sys.Procs = append(sys.Procs, &silent{left: spec.S})
		sys.PortProcs = append(sys.PortProcs, i)
	}
	return sys, nil
}

// silent takes a fixed number of steps without communicating, then idles.
type silent struct{ left int }

func (s *silent) Step([]mp.Message) any {
	if s.left > 0 {
		s.left--
	}
	return nil
}

func (s *silent) Idle() bool { return s.left == 0 }
