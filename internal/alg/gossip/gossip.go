// Package gossip implements a shared-memory session algorithm for
// point-to-point topologies: an alpha-synchronizer whose per-vertex state
// is O(degree), the algorithm that makes million-port runs feasible.
//
// The relay-tree algorithm (internal/alg/async) confirms each session by
// propagating an n-lane progress vector to every port — Theta(n) state
// per process, Theta(n^2) for the system, unaffordable past n ~ 10^4.
// Here each vertex of a graph G instead keeps one phase counter and
// gossips it to its neighbors through per-edge cells: a vertex advances
// from phase p to p+1 only after publishing p on every incident edge and
// reading phase >= p from every neighbor. That is the classic
// alpha-synchronizer discipline, and it pins phases to distances —
// |phase(u) - phase(v)| <= dist(u, v) at every causal point.
//
// Sessions follow from the skew bound. Let D >= diameter(G) and
// P = D + 1. When the first vertex completes phase i*P, every vertex has
// completed phase i*P - D = (i-1)*P + 1: the enabling reads trace back
// through causally preceding writes along every path. Before the first
// vertex completed phase (i-1)*P, no vertex had reached (i-1)*P + 1. So
// between those two instants every vertex takes the port step completing
// its phase (i-1)*P + 1 — a full session per P phases. Running to phase
// s*P therefore certifies s disjoint sessions, in time proportional to
// s * D * (step gap) with 2*deg + 1 + (polling) steps per vertex per
// phase. D is taken as topo.DiameterBound (2*ecc(v0), one BFS), trading
// a factor <= 2 in running time for O(V + E) construction at n = 10^6.
//
// Like the synchronous algorithm, termination is counting-based, not
// confirmation-based: the algorithm is oblivious to the timing model and
// needs no timing parameters — the graph itself is the clock.
package gossip

import (
	"fmt"

	"sessionproblem/internal/core"
	"sessionproblem/internal/model"
	"sessionproblem/internal/sm"
	"sessionproblem/internal/timing"
	"sessionproblem/internal/topo"
)

// SM is the gossip algorithm over a named topology family
// (topo.Families); the graph is a pure function of (family, n, seed).
type SM struct {
	family string
	seed   uint64
}

var _ core.SMAlgorithm = SM{}

// NewSM returns the gossip algorithm over the named topology family,
// built deterministically from seed at the spec's port count.
func NewSM(family string, seed uint64) SM { return SM{family: family, seed: seed} }

// Name implements core.SMAlgorithm.
func (a SM) Name() string { return "gossip-" + a.family }

// BuildSM constructs one vertex process per port plus two directed phase
// cells per graph edge. Variable IDs are dense — ports first, then edge
// cells — and declared via NumVars so the executor uses slice-backed
// storage; every variable has at most two accessors, honoring b = 2.
func (a SM) BuildSM(spec core.Spec, _ timing.Model) (*sm.System, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	g, err := topo.Build(a.family, spec.N, a.seed)
	if err != nil {
		return nil, err
	}
	b := spec.B
	if b == 0 {
		b = 2
	}
	n := spec.N
	target := spec.S * (g.DiameterBound() + 1)
	// Directed edge cell u->v carries u's phase for v to read. outVars[u]
	// is indexed like g.Neighbors(u); v finds the cell u->v by u's sorted
	// adjacency position of v.
	outVars := make([][]model.VarID, n)
	next := model.VarID(n)
	for v := 0; v < n; v++ {
		deg := g.Degree(v)
		outVars[v] = make([]model.VarID, deg)
		for i := range outVars[v] {
			outVars[v][i] = next
			next++
		}
	}
	sys := &sm.System{B: b, NumVars: int(next)}
	sys.Procs = make([]sm.Process, 0, n)
	sys.Ports = make([]sm.PortBinding, 0, n)
	for v := 0; v < n; v++ {
		nbrs := g.Neighbors(v)
		in := make([]model.VarID, len(nbrs))
		for i, u := range nbrs {
			pos := adjPos(g.Neighbors(u), v)
			if pos < 0 {
				return nil, fmt.Errorf("gossip: asymmetric adjacency %d-%d in %s graph", v, u, a.family)
			}
			in[i] = outVars[u][pos]
		}
		sys.Procs = append(sys.Procs, newVertex(v, target, outVars[v], in))
		sys.Ports = append(sys.Ports, sm.PortBinding{Var: model.VarID(v), Proc: v})
	}
	return sys, nil
}

// adjPos finds v in a sorted adjacency list by binary search.
func adjPos(nbrs []int, v int) int {
	lo, hi := 0, len(nbrs)
	for lo < hi {
		mid := (lo + hi) / 2
		if nbrs[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(nbrs) && nbrs[lo] == v {
		return lo
	}
	return -1
}

// Vertex modes: take the port step completing the next phase, publish the
// new phase on each outgoing edge cell, then poll incoming cells until
// every neighbor has caught up.
const (
	modePort = iota
	modePublish
	modePoll
)

// Vertex is one gossip process. Its state is O(degree): the phase
// counter, the in/out cell IDs and one heard-phase slot per neighbor.
// Phase values are stored as plain ints, so edge-cell writes of small
// phases stay allocation-free.
type Vertex struct {
	id      int
	portVar model.VarID
	out     []model.VarID
	in      []model.VarID
	heard   []int

	phase  int
	target int
	mode   int
	cursor int
	idle   bool
}

var _ sm.Process = (*Vertex)(nil)

func newVertex(id, target int, out, in []model.VarID) *Vertex {
	return &Vertex{
		id:      id,
		portVar: model.VarID(id),
		out:     out,
		in:      in,
		heard:   make([]int, len(in)),
		target:  target,
		mode:    modePort,
	}
}

// Target implements sm.Process: the variable the current mode accesses.
func (v *Vertex) Target() model.VarID {
	switch v.mode {
	case modePublish:
		return v.out[v.cursor]
	case modePoll:
		return v.in[v.cursor]
	default:
		return v.portVar
	}
}

// Step implements sm.Process.
func (v *Vertex) Step(old sm.Value) sm.Value {
	switch {
	case v.idle:
		return old
	case v.mode == modePort:
		v.phase++
		if v.phase >= v.target {
			// The last phase anyone waits to hear is target-1, already
			// published; idling here leaves the cells in their final state.
			v.idle = true
		} else if len(v.out) > 0 {
			v.mode = modePublish
			v.cursor = 0
		}
		return v.phase
	case v.mode == modePublish:
		v.cursor++
		if v.cursor == len(v.out) {
			v.seek(0)
		}
		return v.phase
	default: // modePoll
		if p, ok := old.(int); ok && p > v.heard[v.cursor] {
			v.heard[v.cursor] = p
		}
		v.seek(v.cursor + 1)
		return old
	}
}

// seek points the vertex at the next neighbor still behind the current
// phase, scanning circularly from position from; when none remains the
// next step is the port step that completes the following phase.
func (v *Vertex) seek(from int) {
	d := len(v.in)
	for i := 0; i < d; i++ {
		j := from + i
		if j >= d {
			j -= d
		}
		if v.heard[j] < v.phase {
			v.mode = modePoll
			v.cursor = j
			return
		}
	}
	v.mode = modePort
}

// Idle implements sm.Process.
func (v *Vertex) Idle() bool { return v.idle }

// Phase exposes the phase counter (for tests).
func (v *Vertex) Phase() int { return v.phase }
