package gossip_test

import (
	"context"
	"testing"

	"sessionproblem/internal/alg/gossip"
	"sessionproblem/internal/core"
	"sessionproblem/internal/timing"
	"sessionproblem/internal/topo"
)

// TestGossipAchievesSessions runs the synchronizer over every topology
// family under the asynchronous shared-memory model: RunSM verifies the
// session condition internally, so a pass means >= s disjoint sessions in
// every sampled admissible computation.
func TestGossipAchievesSessions(t *testing.T) {
	m := timing.NewAsynchronousSM(4)
	spec := core.Spec{S: 3, N: 16, B: 2}
	for _, family := range topo.Families() {
		alg := gossip.NewSM(family, 9)
		for _, st := range []timing.Strategy{timing.Slow, timing.Fast, timing.Random, timing.Jittered} {
			for seed := uint64(1); seed <= 3; seed++ {
				if _, err := core.RunSM(alg, spec, m, st, seed); err != nil {
					t.Errorf("%s/%v/seed %d: %v", family, st, seed, err)
				}
			}
		}
	}
}

// TestGossipModelOblivious checks the algorithm needs no timing
// parameters: the same build passes verification under the synchronous
// and semi-synchronous models too.
func TestGossipModelOblivious(t *testing.T) {
	spec := core.Spec{S: 2, N: 9, B: 2}
	alg := gossip.NewSM("torus", 1)
	for _, m := range []timing.Model{
		timing.NewSynchronous(3, 0),
		timing.NewSemiSynchronous(2, 7, 0),
		timing.NewPeriodic(2, 7, 0),
	} {
		for seed := uint64(1); seed <= 3; seed++ {
			if _, err := core.RunSM(alg, spec, m, timing.Random, seed); err != nil {
				t.Errorf("%v/seed %d: %v", m.Kind, seed, err)
			}
		}
	}
}

// TestGossipStreamMatches pins the streaming certifier to the
// materialized verifier over the generated families, the path large-n
// runs take.
func TestGossipStreamMatches(t *testing.T) {
	m := timing.NewAsynchronousSM(4)
	spec := core.Spec{S: 2, N: 12, B: 2}
	for _, family := range []string{"grid", "expander", "ring"} {
		alg := gossip.NewSM(family, 5)
		want, err := core.RunSM(alg, spec, m, timing.Random, 2)
		if err != nil {
			t.Fatalf("%s materialized: %v", family, err)
		}
		got, err := core.RunSMStream(context.Background(), alg, spec, m, timing.Random, 2, nil, core.StreamOptions{})
		if err != nil {
			t.Fatalf("%s streaming: %v", family, err)
		}
		if got.Sessions != want.Sessions || got.Rounds != want.Rounds ||
			got.Gamma != want.Gamma || got.Finish != want.Finish || got.Steps() != want.Steps() {
			t.Errorf("%s: streaming report diverged: got %+v want %+v", family, got, want)
		}
	}
}

// TestGossipIdleStability probes condition (1): once a vertex idles it
// stays idle and stops modifying shared state.
func TestGossipIdleStability(t *testing.T) {
	m := timing.NewAsynchronousSM(4)
	if err := core.ProbeIdleStability(gossip.NewSM("expander", 3), core.Spec{S: 2, N: 10, B: 2}, m, timing.Random, 1); err != nil {
		t.Fatal(err)
	}
}

// TestGossipPhaseTarget checks the skew-derived step budget: every vertex
// stops exactly at phase s*(D+1).
func TestGossipPhaseTarget(t *testing.T) {
	g, err := topo.Build("grid", 9, 0)
	if err != nil {
		t.Fatal(err)
	}
	spec := core.Spec{S: 3, N: 9, B: 2}
	alg := gossip.NewSM("grid", 0)
	sys, err := alg.BuildSM(spec, timing.NewAsynchronousSM(4))
	if err != nil {
		t.Fatal(err)
	}
	want := spec.S * (g.DiameterBound() + 1)
	rep, err := core.RunSM(alg, spec, timing.NewAsynchronousSM(4), timing.Slow, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Sessions < spec.S {
		t.Errorf("sessions = %d, want >= %d", rep.Sessions, spec.S)
	}
	// The build used by RunSM is fresh; inspect a fresh system's target
	// via a vertex from our own build.
	v, ok := sys.Procs[0].(*gossip.Vertex)
	if !ok {
		t.Fatalf("proc 0 is %T, want *gossip.Vertex", sys.Procs[0])
	}
	if v.Phase() != 0 {
		t.Errorf("fresh vertex phase = %d, want 0", v.Phase())
	}
	_ = want
	// Port steps per vertex equal the phase target: with 9 ports, the
	// trace must contain exactly 9*target port steps.
	ports := 0
	for _, s := range rep.Trace.Steps {
		if s.IsPortStep() {
			ports++
		}
	}
	if ports != 9*want {
		t.Errorf("port steps = %d, want %d (9 vertices x phase target %d)", ports, 9*want, want)
	}
}
