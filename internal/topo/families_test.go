package topo

import (
	"math"
	"reflect"
	"strings"
	"testing"
)

func TestGridShape(t *testing.T) {
	g := Grid(3, 4)
	if g.N != 12 {
		t.Fatalf("Grid(3,4).N = %d, want 12", g.N)
	}
	if d := g.Diameter(); d != 3+4-2 {
		t.Errorf("Grid(3,4) diameter = %d, want 5", d)
	}
	// Corner, edge and interior degrees.
	if got := g.Degree(0); got != 2 {
		t.Errorf("corner degree = %d, want 2", got)
	}
	if got := g.Degree(1); got != 3 {
		t.Errorf("edge degree = %d, want 3", got)
	}
	if got := g.Degree(1*4 + 1); got != 4 {
		t.Errorf("interior degree = %d, want 4", got)
	}
}

func TestTorusShape(t *testing.T) {
	g := Torus(4, 4)
	if d := g.Diameter(); d != 4/2+4/2 {
		t.Errorf("Torus(4,4) diameter = %d, want 4", d)
	}
	for v := 0; v < g.N; v++ {
		if got := g.Degree(v); got != 4 {
			t.Fatalf("Torus(4,4) degree(%d) = %d, want 4", v, got)
		}
	}
	// Degenerate dimensions: wrap edges that would self-loop or duplicate
	// are dropped, leaving valid graphs.
	if g := Torus(1, 5); g.Diameter() != 2 {
		t.Errorf("Torus(1,5) should be the 5-cycle (diameter 2), got diameter %d", g.Diameter())
	}
	if g := Torus(2, 2); g.Diameter() != 2 {
		t.Errorf("Torus(2,2) should be the 4-cycle (diameter 2), got diameter %d", g.Diameter())
	}
}

func TestRandomRegularProperties(t *testing.T) {
	const n, d = 50, 3
	for seed := uint64(1); seed <= 5; seed++ {
		g, err := RandomRegular(n, d, seed)
		if err != nil {
			t.Fatalf("RandomRegular(%d,%d,%d): %v", n, d, seed, err)
		}
		for v := 0; v < n; v++ {
			if got := g.Degree(v); got != d {
				t.Fatalf("seed %d: degree(%d) = %d, want %d", seed, v, got, d)
			}
			for _, u := range g.Neighbors(v) {
				if u == v {
					t.Fatalf("seed %d: self-loop at %d", seed, v)
				}
			}
		}
		// Connectivity is a construction invariant; spot-check it anyway.
		for v := 0; v < n; v++ {
			if g.Dist(0, v) < 0 {
				t.Fatalf("seed %d: vertex %d unreachable", seed, v)
			}
		}
	}
}

func TestRandomRegularSeedDeterminism(t *testing.T) {
	a, err := RandomRegular(40, 4, 11)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RandomRegular(40, 4, 11)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.adj, b.adj) {
		t.Error("same seed produced different graphs")
	}
	c, err := RandomRegular(40, 4, 12)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.adj, c.adj) {
		t.Error("different seeds produced identical graphs")
	}
}

func TestRandomRegularValidation(t *testing.T) {
	cases := []struct{ n, d int }{
		{5, 5},  // d >= n
		{5, 3},  // odd degree sum
		{10, 1}, // degree too small
		{0, 4},  // no vertices
	}
	for _, c := range cases {
		if _, err := RandomRegular(c.n, c.d, 1); err == nil {
			t.Errorf("RandomRegular(%d,%d) should fail", c.n, c.d)
		}
	}
}

// TestDiameterSanity pins the families to their asymptotic regimes at
// n = 1024: the grid's exact diameter is Theta(sqrt(n)) while the
// expander's single-BFS bound is already Theta(log n) — an order of
// magnitude apart.
func TestDiameterSanity(t *testing.T) {
	const n = 1024
	grid, err := Build("grid", n, 0)
	if err != nil {
		t.Fatal(err)
	}
	if d := grid.Diameter(); d != 32+32-2 {
		t.Errorf("grid(1024) diameter = %d, want 62", d)
	}
	exp, err := Build("expander", n, 1)
	if err != nil {
		t.Fatal(err)
	}
	bound := exp.DiameterBound()
	if limit := 4 * int(math.Log2(n)); bound > limit {
		t.Errorf("expander(1024) diameter bound = %d, want <= %d (Theta(log n))", bound, limit)
	}
	if bound >= grid.Diameter() {
		t.Errorf("expander bound %d should beat the grid diameter %d", bound, grid.Diameter())
	}
}

func TestDiameterBoundBrackets(t *testing.T) {
	graphs := map[string]*Graph{
		"ring":  Ring(9),
		"line":  Line(7),
		"star":  Star(8),
		"grid":  Grid(4, 5),
		"torus": Torus(4, 5),
	}
	if g, err := RandomRegular(30, 4, 3); err == nil {
		graphs["random-regular"] = g
	} else {
		t.Fatal(err)
	}
	for name, g := range graphs {
		diam, bound := g.Diameter(), g.DiameterBound()
		if bound < diam || bound > 2*diam {
			t.Errorf("%s: DiameterBound %d outside [diam, 2*diam] = [%d, %d]", name, bound, diam, 2*diam)
		}
	}
}

func TestBuildFamilies(t *testing.T) {
	for _, name := range Families() {
		for _, n := range []int{1, 2, 5, 12, 13} { // 13: prime, grid degenerates to a line
			g, err := Build(name, n, 7)
			if err != nil {
				t.Fatalf("Build(%q, %d): %v", name, n, err)
			}
			if g.N != n {
				t.Fatalf("Build(%q, %d).N = %d", name, n, g.N)
			}
		}
	}
	if _, err := Build("moebius", 8, 0); err == nil || !strings.Contains(err.Error(), "unknown topology family") {
		t.Errorf("unknown family error = %v", err)
	}
}

func TestLazyDistConsistency(t *testing.T) {
	g, err := Build("torus", 36, 0)
	if err != nil {
		t.Fatal(err)
	}
	for a := 0; a < g.N; a += 5 {
		for b := 0; b < g.N; b += 3 {
			if g.Dist(a, b) != g.Dist(b, a) {
				t.Fatalf("Dist(%d,%d)=%d != Dist(%d,%d)=%d", a, b, g.Dist(a, b), b, a, g.Dist(b, a))
			}
		}
	}
}
