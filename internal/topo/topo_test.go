package topo

import (
	"testing"
	"testing/quick"

	"sessionproblem/internal/alg/async"
	"sessionproblem/internal/alg/periodic"
	"sessionproblem/internal/bounds"
	"sessionproblem/internal/core"
	"sessionproblem/internal/mp"
	"sessionproblem/internal/sim"
	"sessionproblem/internal/timing"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(0, nil); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := New(3, [][2]int{{0, 5}}); err == nil {
		t.Error("out-of-range edge accepted")
	}
	if _, err := New(3, [][2]int{{1, 1}}); err == nil {
		t.Error("self-loop accepted")
	}
	if _, err := New(3, [][2]int{{0, 1}}); err == nil {
		t.Error("disconnected graph accepted")
	}
	if _, err := New(1, nil); err != nil {
		t.Error("singleton graph rejected")
	}
}

func TestDuplicateEdgesIgnored(t *testing.T) {
	g, err := New(2, [][2]int{{0, 1}, {1, 0}, {0, 1}})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if g.Degree(0) != 1 || g.Degree(1) != 1 {
		t.Errorf("duplicate edges counted: deg=%d,%d", g.Degree(0), g.Degree(1))
	}
}

func TestStandardTopologies(t *testing.T) {
	tests := []struct {
		name string
		g    *Graph
		diam int
	}{
		{"K5", Complete(5), 1},
		{"C6", Ring(6), 3},
		{"C7", Ring(7), 3},
		{"P5", Line(5), 4},
		{"S6", Star(6), 2},
		{"K1", Complete(1), 0},
		{"P2", Line(2), 1},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.g.Diameter(); got != tt.diam {
				t.Errorf("diameter: got %d, want %d", got, tt.diam)
			}
		})
	}
}

func TestDistances(t *testing.T) {
	g := Line(4) // 0-1-2-3
	tests := []struct{ a, b, want int }{
		{0, 0, 0}, {0, 1, 1}, {0, 3, 3}, {2, 1, 1}, {3, 0, 3},
	}
	for _, tt := range tests {
		if got := g.Dist(tt.a, tt.b); got != tt.want {
			t.Errorf("Dist(%d,%d): got %d, want %d", tt.a, tt.b, got, tt.want)
		}
	}
}

// Property: distances are symmetric and satisfy the triangle inequality on
// rings.
func TestDistanceMetricProperty(t *testing.T) {
	f := func(n8, a8, b8, c8 uint8) bool {
		n := int(n8%10) + 3
		g := Ring(n)
		a, b, c := int(a8)%n, int(b8)%n, int(c8)%n
		if g.Dist(a, b) != g.Dist(b, a) {
			return false
		}
		return g.Dist(a, c) <= g.Dist(a, b)+g.Dist(b, c)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestHopSchedulerDelayRange(t *testing.T) {
	g := Ring(6)
	base := timing.NewSporadic(2, 0, 0, 4).NewScheduler(timing.Fast, 1)
	hs, err := NewHopScheduler(g, base, 3, 7, 9)
	if err != nil {
		t.Fatalf("NewHopScheduler: %v", err)
	}
	for src := 0; src < 6; src++ {
		for dst := 0; dst < 6; dst++ {
			d := hs.Delay(src, dst)
			hops := g.Dist(src, dst)
			if hops == 0 {
				hops = 1
			}
			lo := sim.Duration(hops) * 3
			hi := sim.Duration(hops) * 7
			if d < lo || d > hi {
				t.Errorf("delay %d->%d = %v outside [%v,%v]", src, dst, d, lo, hi)
			}
		}
	}
	d1, d2 := hs.EffectiveDelayBounds()
	if d1 != 3 || d2 != 21 {
		t.Errorf("effective bounds: got [%v,%v], want [3,21]", d1, d2)
	}
}

func TestHopSchedulerValidation(t *testing.T) {
	g := Complete(3)
	if _, err := NewHopScheduler(g, nil, 5, 4, 1); err == nil {
		t.Error("inverted hop range accepted")
	}
	if _, err := NewHopScheduler(g, nil, -1, 4, 1); err == nil {
		t.Error("negative hop delay accepted")
	}
}

// TestDiameterConversion is the paper's conversion note made executable:
// the asynchronous algorithm run over a point-to-point topology with
// per-hop delays in [0, h2] is admissible for — and respects the upper
// bound of — the abstract model with d2 = diameter * h2.
func TestDiameterConversion(t *testing.T) {
	const (
		s, n = 3, 6
		c2   = 3
		h2   = 8
	)
	for _, tt := range []struct {
		name string
		g    *Graph
	}{
		{"complete", Complete(n)},
		{"ring", Ring(n)},
		{"star", Star(n)},
		{"line", Line(n)},
	} {
		t.Run(tt.name, func(t *testing.T) {
			spec := core.Spec{S: s, N: n}
			sys, err := async.NewMP().BuildMP(spec, timing.NewAsynchronousMP(c2, 0))
			if err != nil {
				t.Fatalf("BuildMP: %v", err)
			}
			inner := timing.NewAsynchronousMP(c2, 0).NewScheduler(timing.Random, 5)
			hs, err := NewHopScheduler(tt.g, inner, 0, h2, 7)
			if err != nil {
				t.Fatalf("NewHopScheduler: %v", err)
			}
			res, err := mp.Run(sys, hs, mp.Options{})
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			if got := res.Trace.CountSessions(); got < s {
				t.Errorf("sessions: got %d, want >= %d", got, s)
			}
			// Admissible for the effective abstract model.
			_, d2 := hs.EffectiveDelayBounds()
			eff := timing.NewAsynchronousMP(c2, d2)
			if err := eff.CheckAdmissible(res.Trace, res.Delays); err != nil {
				t.Errorf("not admissible for effective model: %v", err)
			}
			// Respects the abstract upper bound with the effective d2.
			p := bounds.Params{S: s, N: n, C2: c2, D2: d2}
			if float64(res.Finish) > bounds.AsyncMPU(p) {
				t.Errorf("finish %v exceeds effective bound %v", res.Finish, bounds.AsyncMPU(p))
			}
		})
	}
}

// TestDiameterScalesRunningTime shows the diameter factor is real: the same
// algorithm at the same per-hop delay is slower on a line than on a
// complete graph.
func TestDiameterScalesRunningTime(t *testing.T) {
	const (
		s, n = 4, 8
		c2   = 2
		h2   = 10
	)
	finish := func(g *Graph) sim.Time {
		spec := core.Spec{S: s, N: n}
		sys, err := periodic.NewMP().BuildMP(spec, timing.NewPeriodic(1, c2, 0))
		if err != nil {
			t.Fatalf("BuildMP: %v", err)
		}
		inner := timing.NewPeriodic(1, c2, 0).NewScheduler(timing.Slow, 1)
		hs, err := NewHopScheduler(g, inner, h2, h2, 3)
		if err != nil {
			t.Fatalf("NewHopScheduler: %v", err)
		}
		res, err := mp.Run(sys, hs, mp.Options{})
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		if got := res.Trace.CountSessions(); got < s {
			t.Fatalf("sessions: %d", got)
		}
		return res.Finish
	}
	complete := finish(Complete(n))
	line := finish(Line(n))
	if line <= complete {
		t.Errorf("line (%v) should be slower than complete (%v): diameter factor missing",
			line, complete)
	}
}
