// Generated topology families. The fixed F5 topologies (complete, star,
// ring, line) pin the diameter at the extremes; the families here fill in
// the middle of the diameter spectrum and scale to millions of vertices:
// grids and tori have diameter Theta(sqrt(V)), random regular graphs are
// expanders with diameter Theta(log V) with high probability. All
// randomness flows through sim.RNG, so every family is a pure function of
// (n, seed) — the determinism contract sessionlint's nodeterm analyzer
// enforces on this package.

package topo

import (
	"fmt"
	"math"
	"strings"

	"sessionproblem/internal/sim"
)

// Grid returns the rows x cols lattice with 4-neighbor connectivity
// (diameter rows+cols-2). Both dimensions must be at least 1; like the
// other fixed constructors it panics on impossible input.
func Grid(rows, cols int) *Graph {
	return mustNew(rows*cols, latticeEdges(rows, cols, false))
}

// Torus returns the rows x cols lattice with wraparound in both
// dimensions (diameter floor(rows/2)+floor(cols/2)). Wrap edges that
// would duplicate a lattice edge (dimension 2) or form a self-loop
// (dimension 1) are dropped, so small dimensions degenerate gracefully.
func Torus(rows, cols int) *Graph {
	return mustNew(rows*cols, latticeEdges(rows, cols, true))
}

func latticeEdges(rows, cols int, wrap bool) [][2]int {
	if rows < 1 || cols < 1 {
		panic(fmt.Sprintf("topo: impossible construction: lattice needs positive dimensions, got %dx%d", rows, cols))
	}
	id := func(r, c int) int { return r*cols + c }
	edges := make([][2]int, 0, 2*rows*cols)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				edges = append(edges, [2]int{id(r, c), id(r, c+1)})
			} else if wrap && cols > 2 {
				edges = append(edges, [2]int{id(r, c), id(r, 0)})
			}
			if r+1 < rows {
				edges = append(edges, [2]int{id(r, c), id(r+1, c)})
			} else if wrap && rows > 2 {
				edges = append(edges, [2]int{id(r, c), id(0, c)})
			}
		}
	}
	return edges
}

// RandomRegular returns a uniformly-flavored random simple d-regular
// graph on n vertices via the configuration (stub-pairing) model with
// switch-based repair: stubs are shuffled and paired, then self-loops and
// duplicate edges are eliminated by exchanging endpoints with randomly
// chosen good edges. The result is deterministic in (n, d, seed). It
// fails if the sampled graph is disconnected (use Expander for the
// retry-until-connected variant) or if no simple pairing is found within
// the attempt budget — both vanishingly rare for d >= 3.
func RandomRegular(n, d int, seed uint64) (*Graph, error) {
	if err := validateRegular(n, d); err != nil {
		return nil, err
	}
	rng := sim.NewRNG(seed)
	const attempts = 64
	for a := 0; a < attempts; a++ {
		edges, ok := pairStubs(n, d, rng)
		if !ok {
			continue // repair stalled; reshuffle
		}
		return New(n, edges)
	}
	return nil, fmt.Errorf("topo: no simple %d-regular pairing on %d vertices after %d attempts (seed %d)", d, n, attempts, seed)
}

func validateRegular(n, d int) error {
	if n < 1 {
		return fmt.Errorf("topo: need at least one vertex, got %d", n)
	}
	if d < 2 {
		return fmt.Errorf("topo: regular degree must be >= 2, got %d", d)
	}
	if d >= n {
		return fmt.Errorf("topo: regular degree %d needs more than %d vertices", d, n)
	}
	if n*d%2 != 0 {
		return fmt.Errorf("topo: no %d-regular graph on %d vertices (odd degree sum)", d, n)
	}
	return nil
}

// pairStubs draws one configuration-model pairing and repairs it into a
// simple graph, or reports failure so the caller reshuffles.
func pairStubs(n, d int, rng *sim.RNG) ([][2]int, bool) {
	m := n * d / 2
	perm := rng.Perm(n * d)
	edges := make([][2]int, m)
	for k := range edges {
		edges[k] = [2]int{perm[2*k] / d, perm[2*k+1] / d}
	}
	// seen holds the keys of currently-good (simple, unique) edges.
	key := func(e [2]int) uint64 {
		a, b := e[0], e[1]
		if a > b {
			a, b = b, a
		}
		return uint64(a)*uint64(n) + uint64(b)
	}
	seen := make(map[uint64]bool, m)
	var bad []int
	for k, e := range edges {
		if e[0] != e[1] && !seen[key(e)] {
			seen[key(e)] = true
		} else {
			bad = append(bad, k)
		}
	}
	// Switch repair: splice a bad edge with a random good one. Each
	// success shrinks bad by one; expected bad count is O(d^2), so the
	// budget is generous.
	budget := 64 * (len(bad) + 4)
	for len(bad) > 0 && budget > 0 {
		budget--
		k := bad[len(bad)-1]
		j := rng.Intn(m)
		f := edges[j]
		if j == k || !seen[key(f)] {
			continue
		}
		e := edges[k]
		// (a,b),(c,f1) -> (a,f1),(c,b): both new edges must be simple and
		// distinct from each other and from every surviving edge.
		ne := [2]int{e[0], f[1]}
		nf := [2]int{f[0], e[1]}
		if ne[0] == ne[1] || nf[0] == nf[1] || key(ne) == key(nf) {
			continue
		}
		delete(seen, key(f))
		if seen[key(ne)] || seen[key(nf)] {
			seen[key(f)] = true
			continue
		}
		seen[key(ne)] = true
		seen[key(nf)] = true
		edges[k], edges[j] = ne, nf
		bad = bad[:len(bad)-1]
	}
	return edges, len(bad) == 0
}

// Expander returns a connected random d-regular graph: RandomRegular
// retried across derived seeds until the sample is connected. Random
// regular graphs with d >= 3 are connected — and are expanders, with
// diameter O(log n) — with high probability, so the first draw almost
// always succeeds and the retry only guards the rare exception.
func Expander(n, d int, seed uint64) (*Graph, error) {
	if err := validateRegular(n, d); err != nil {
		return nil, err
	}
	const retries = 32
	var lastErr error
	for r := 0; r < retries; r++ {
		// Weyl-sequence seed derivation keeps retries decorrelated while
		// staying a pure function of the caller's seed.
		g, err := RandomRegular(n, d, seed+uint64(r)*0x9e3779b97f4a7c15)
		if err == nil {
			return g, nil
		}
		lastErr = err
	}
	return nil, fmt.Errorf("topo: no connected %d-regular graph on %d vertices after %d retries: %w", d, n, retries, lastErr)
}

// generatedDegree is the degree Build uses for the random families: 4
// keeps the degree sum even for every n and is comfortably above the
// d >= 3 connectivity threshold.
const generatedDegree = 4

// Families lists the topology family names Build accepts, in the order
// flags and docs present them.
func Families() []string {
	return []string{"complete", "star", "ring", "line", "grid", "torus", "expander", "random-regular"}
}

// Build constructs the named family at n vertices. The fixed families
// ignore seed; the random families are deterministic in it. Grids and
// tori use the most-square rows x cols factorization of n (degenerating
// to a line for prime n); the random families use degree 4 and fall back
// to the complete graph when n is too small for it.
func Build(name string, n int, seed uint64) (*Graph, error) {
	if n < 1 {
		return nil, fmt.Errorf("topo: need at least one vertex, got %d", n)
	}
	switch name {
	case "complete":
		return Complete(n), nil
	case "star":
		return Star(n), nil
	case "ring":
		return Ring(n), nil
	case "line":
		return Line(n), nil
	case "grid":
		r, c := gridDims(n)
		return Grid(r, c), nil
	case "torus":
		r, c := gridDims(n)
		return Torus(r, c), nil
	case "expander":
		if n <= generatedDegree+1 {
			return Complete(n), nil
		}
		return Expander(n, generatedDegree, seed)
	case "random-regular":
		if n <= generatedDegree+1 {
			return Complete(n), nil
		}
		return RandomRegular(n, generatedDegree, seed)
	default:
		return nil, fmt.Errorf("topo: unknown topology family %q (have %s)", name, strings.Join(Families(), ", "))
	}
}

// gridDims factors n as rows*cols with rows the largest divisor not
// exceeding sqrt(n), the most-square lattice n admits exactly.
func gridDims(n int) (rows, cols int) {
	rows = int(math.Sqrt(float64(n)))
	for rows > 1 && n%rows != 0 {
		rows--
	}
	return rows, n / rows
}
