// Package topo models point-to-point network topologies. The paper's
// message-passing model is a fully-connected broadcast abstraction whose
// delay bound d2 "subsumes the diameter factor" of the point-to-point
// networks in [4]; this package supplies the concrete side of that
// conversion: strongly connected graphs, shortest-path distances and
// diameters, and a scheduler adaptor that realizes a broadcast as
// per-destination delays summed over shortest-path hops. Running any
// message-passing algorithm through a HopScheduler over a graph G with
// per-hop delays in [h1, h2] is admissible for the abstract model with
// d1 = h1 and d2 = Diameter(G)*h2, which is exactly the conversion the
// paper applies to Table 1.
//
// Construction is O(V + E) and distances are computed lazily, one BFS
// row at a time, so million-vertex graphs from the generated families
// (families.go) stay within an O(V + E) memory ceiling as long as the
// caller sticks to Dist, DiameterBound and the scheduler adaptor. The
// exact Diameter runs a BFS from every vertex and is meant for the small
// fixed topologies of the F5 experiment.
package topo

import (
	"fmt"
	"sort"
	"sync"

	"sessionproblem/internal/sim"
)

// Graph is an undirected connected graph over vertices 0..N-1.
type Graph struct {
	N   int
	adj [][]int

	// mu guards the lazily filled caches below, letting a built graph be
	// shared by concurrent sweep workers.
	mu sync.Mutex
	// dist rows are BFS results cached per source; nil until requested.
	dist [][]int
	// diam and bound memoize Diameter and DiameterBound; -1 = unknown.
	diam  int
	bound int
}

// New builds a graph from an edge list. It fails unless the graph is
// connected and every endpoint is in range. Duplicate edges are merged;
// self-loops are rejected. Adjacency lists come out sorted ascending.
// Construction is O(V + E log E) time and O(V + E) memory.
func New(n int, edges [][2]int) (*Graph, error) {
	if n < 1 {
		return nil, fmt.Errorf("topo: need at least one vertex, got %d", n)
	}
	g := &Graph{N: n, adj: make([][]int, n), diam: -1, bound: -1}
	deg := make([]int, n)
	for _, e := range edges {
		a, b := e[0], e[1]
		if a < 0 || a >= n || b < 0 || b >= n {
			return nil, fmt.Errorf("topo: edge (%d,%d) out of range", a, b)
		}
		if a == b {
			return nil, fmt.Errorf("topo: self-loop at %d", a)
		}
		deg[a]++
		deg[b]++
	}
	for v, d := range deg {
		if d > 0 {
			g.adj[v] = make([]int, 0, d)
		}
	}
	for _, e := range edges {
		g.adj[e[0]] = append(g.adj[e[0]], e[1])
		g.adj[e[1]] = append(g.adj[e[1]], e[0])
	}
	// Sort-and-compact instead of an edge-set map: a duplicate of an edge
	// appears in both endpoint lists, so independent per-vertex dedup keeps
	// the graph symmetric without an O(E) hash table.
	for v := range g.adj {
		l := g.adj[v]
		sort.Ints(l)
		w := 0
		for i, u := range l {
			if i == 0 || u != l[i-1] {
				l[w] = u
				w++
			}
		}
		g.adj[v] = l[:w]
	}
	// Connectivity is one BFS from vertex 0, not all-pairs; the row is
	// kept since DiameterBound and many Dist patterns want it anyway.
	g.dist = make([][]int, n)
	row := g.bfs(0)
	for v, d := range row {
		if d < 0 {
			return nil, fmt.Errorf("topo: graph not connected (vertex %d unreachable from %d)", v, 0)
		}
	}
	g.dist[0] = row
	return g, nil
}

// bfs returns the hop distances from src (-1 = unreachable). Callers own
// the returned slice.
func (g *Graph) bfs(src int) []int {
	d := make([]int, g.N)
	for i := range d {
		d[i] = -1
	}
	d[src] = 0
	queue := make([]int, 1, g.N)
	queue[0] = src
	for head := 0; head < len(queue); head++ {
		v := queue[head]
		for _, w := range g.adj[v] {
			if d[w] == -1 {
				d[w] = d[v] + 1
				queue = append(queue, w)
			}
		}
	}
	return d
}

// distRow returns the cached BFS row for src, computing it on first use.
func (g *Graph) distRow(src int) []int {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.dist[src] == nil {
		g.dist[src] = g.bfs(src)
	}
	return g.dist[src]
}

// Dist returns the hop distance between two vertices (0 for a == b). The
// first query from a given source costs one BFS; repeats are O(1).
func (g *Graph) Dist(a, b int) int { return g.distRow(a)[b] }

// Diameter returns the largest hop distance between any two vertices. It
// runs a BFS from every vertex (discarding uncached rows, so memory stays
// O(V + E)) and memoizes the result; for large generated graphs prefer
// DiameterBound, which costs a single BFS.
func (g *Graph) Diameter() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.diam >= 0 {
		return g.diam
	}
	max := 0
	for src := 0; src < g.N; src++ {
		row := g.dist[src]
		if row == nil {
			row = g.bfs(src)
		}
		for _, d := range row {
			if d > max {
				max = d
			}
		}
	}
	g.diam = max
	return max
}

// DiameterBound returns 2*ecc(0), an upper bound on the diameter costing
// one BFS: for any u, w, dist(u, w) <= dist(u, 0) + dist(0, w) <=
// 2*ecc(0), and the bound is itself at most twice the true diameter.
// This is the distance budget the generated-topology algorithms use at
// scales where the exact Diameter's all-sources sweep is unaffordable.
func (g *Graph) DiameterBound() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.bound >= 0 {
		return g.bound
	}
	ecc := 0
	for _, d := range g.dist[0] {
		if d > ecc {
			ecc = d
		}
	}
	g.bound = 2 * ecc
	return g.bound
}

// Degree returns the number of neighbors of v.
func (g *Graph) Degree(v int) int { return len(g.adj[v]) }

// Neighbors returns v's adjacency list, sorted ascending. The slice is
// shared with the graph and must not be mutated.
func (g *Graph) Neighbors(v int) []int { return g.adj[v] }

// NumEdges returns the number of undirected edges.
func (g *Graph) NumEdges() int {
	total := 0
	for _, l := range g.adj {
		total += len(l)
	}
	return total / 2
}

// mustNew builds a graph whose construction cannot fail for the fixed
// topologies below; a failure means a broken invariant, reported with the
// package panic convention.
func mustNew(n int, edges [][2]int) *Graph {
	g, err := New(n, edges)
	if err != nil {
		panic("topo: impossible construction: " + err.Error())
	}
	return g
}

// Complete returns the complete graph K_n (diameter 1).
func Complete(n int) *Graph {
	var edges [][2]int
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			edges = append(edges, [2]int{i, j})
		}
	}
	return mustNew(n, edges) // construction is total for n >= 1
}

// Ring returns the cycle C_n (diameter floor(n/2)); for n <= 2 it
// degenerates to a line.
func Ring(n int) *Graph {
	var edges [][2]int
	for i := 0; i < n; i++ {
		j := (i + 1) % n
		if i != j {
			edges = append(edges, [2]int{i, j})
		}
	}
	return mustNew(n, edges)
}

// Line returns the path P_n (diameter n-1).
func Line(n int) *Graph {
	var edges [][2]int
	for i := 0; i+1 < n; i++ {
		edges = append(edges, [2]int{i, i + 1})
	}
	return mustNew(n, edges)
}

// Star returns the star S_n with center 0 (diameter 2 for n >= 3).
func Star(n int) *Graph {
	var edges [][2]int
	for i := 1; i < n; i++ {
		edges = append(edges, [2]int{0, i})
	}
	return mustNew(n, edges)
}

// GapScheduler is the step-gap side a HopScheduler delegates to.
type GapScheduler interface {
	Gap(proc int) sim.Duration
}

// HopScheduler adapts a point-to-point topology to the message-passing
// executor: a broadcast's delay to each destination is the sum of
// independent per-hop delays in [H1, H2] along a shortest path (a message
// to oneself takes one hop, modeling the loopback the abstract model's
// buf_p write implies).
type HopScheduler struct {
	Graph  *Graph
	Gaps   GapScheduler
	H1, H2 sim.Duration
	rng    *sim.RNG
}

// NewHopScheduler builds a deterministic hop scheduler.
func NewHopScheduler(g *Graph, gaps GapScheduler, h1, h2 sim.Duration, seed uint64) (*HopScheduler, error) {
	if h1 < 0 || h2 < h1 {
		return nil, fmt.Errorf("topo: invalid hop delay range [%v,%v]", h1, h2)
	}
	return &HopScheduler{Graph: g, Gaps: gaps, H1: h1, H2: h2, rng: sim.NewRNG(seed)}, nil
}

// Gap implements mp.Scheduler.
func (h *HopScheduler) Gap(proc int) sim.Duration { return h.Gaps.Gap(proc) }

// Delay implements mp.Scheduler: sum of per-hop draws over the shortest
// path.
func (h *HopScheduler) Delay(src, dst int) sim.Duration {
	hops := h.Graph.Dist(src, dst)
	if hops == 0 {
		hops = 1 // self-delivery still transits the local buffer once
	}
	var total sim.Duration
	for i := 0; i < hops; i++ {
		total += h.rng.DurationBetween(h.H1, h.H2)
	}
	return total
}

// EffectiveDelayBounds returns the abstract-model delay interval [d1, d2]
// that admits every delay this scheduler can produce: d1 = H1 (one hop
// minimum) and d2 = Diameter * H2 (paper Section 1, conversion note 1).
func (h *HopScheduler) EffectiveDelayBounds() (d1, d2 sim.Duration) {
	diam := h.Graph.Diameter()
	if diam == 0 {
		diam = 1
	}
	return h.H1, sim.Duration(diam) * h.H2
}
