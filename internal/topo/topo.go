// Package topo models point-to-point network topologies. The paper's
// message-passing model is a fully-connected broadcast abstraction whose
// delay bound d2 "subsumes the diameter factor" of the point-to-point
// networks in [4]; this package supplies the concrete side of that
// conversion: strongly connected graphs, shortest-path distances and
// diameters, and a scheduler adaptor that realizes a broadcast as
// per-destination delays summed over shortest-path hops. Running any
// message-passing algorithm through a HopScheduler over a graph G with
// per-hop delays in [h1, h2] is admissible for the abstract model with
// d1 = h1 and d2 = Diameter(G)*h2, which is exactly the conversion the
// paper applies to Table 1.
package topo

import (
	"fmt"

	"sessionproblem/internal/sim"
)

// Graph is an undirected connected graph over vertices 0..N-1.
type Graph struct {
	N   int
	adj [][]int
	// dist[i][j] is the shortest-path hop count.
	dist [][]int
}

// New builds a graph from an edge list. It fails unless the graph is
// connected and every endpoint is in range.
func New(n int, edges [][2]int) (*Graph, error) {
	if n < 1 {
		return nil, fmt.Errorf("topo: need at least one vertex, got %d", n)
	}
	g := &Graph{N: n, adj: make([][]int, n)}
	seen := make(map[[2]int]bool)
	for _, e := range edges {
		a, b := e[0], e[1]
		if a < 0 || a >= n || b < 0 || b >= n {
			return nil, fmt.Errorf("topo: edge (%d,%d) out of range", a, b)
		}
		if a == b {
			return nil, fmt.Errorf("topo: self-loop at %d", a)
		}
		if a > b {
			a, b = b, a
		}
		if seen[[2]int{a, b}] {
			continue
		}
		seen[[2]int{a, b}] = true
		g.adj[a] = append(g.adj[a], b)
		g.adj[b] = append(g.adj[b], a)
	}
	if err := g.computeDistances(); err != nil {
		return nil, err
	}
	return g, nil
}

func (g *Graph) computeDistances() error {
	g.dist = make([][]int, g.N)
	for src := 0; src < g.N; src++ {
		d := make([]int, g.N)
		for i := range d {
			d[i] = -1
		}
		d[src] = 0
		queue := []int{src}
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			for _, w := range g.adj[v] {
				if d[w] == -1 {
					d[w] = d[v] + 1
					queue = append(queue, w)
				}
			}
		}
		for i, dv := range d {
			if dv == -1 && g.N > 1 {
				return fmt.Errorf("topo: graph not connected (vertex %d unreachable from %d)", i, src)
			}
		}
		g.dist[src] = d
	}
	return nil
}

// Dist returns the hop distance between two vertices (0 for a == b).
func (g *Graph) Dist(a, b int) int { return g.dist[a][b] }

// Diameter returns the largest hop distance between any two vertices.
func (g *Graph) Diameter() int {
	max := 0
	for _, row := range g.dist {
		for _, d := range row {
			if d > max {
				max = d
			}
		}
	}
	return max
}

// Degree returns the number of neighbors of v.
func (g *Graph) Degree(v int) int { return len(g.adj[v]) }

// mustNew builds a graph whose construction cannot fail for the fixed
// topologies below; a failure means a broken invariant, reported with the
// package panic convention.
func mustNew(n int, edges [][2]int) *Graph {
	g, err := New(n, edges)
	if err != nil {
		panic("topo: impossible construction: " + err.Error())
	}
	return g
}

// Complete returns the complete graph K_n (diameter 1).
func Complete(n int) *Graph {
	var edges [][2]int
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			edges = append(edges, [2]int{i, j})
		}
	}
	return mustNew(n, edges) // construction is total for n >= 1
}

// Ring returns the cycle C_n (diameter floor(n/2)); for n <= 2 it
// degenerates to a line.
func Ring(n int) *Graph {
	var edges [][2]int
	for i := 0; i < n; i++ {
		j := (i + 1) % n
		if i != j {
			edges = append(edges, [2]int{i, j})
		}
	}
	return mustNew(n, edges)
}

// Line returns the path P_n (diameter n-1).
func Line(n int) *Graph {
	var edges [][2]int
	for i := 0; i+1 < n; i++ {
		edges = append(edges, [2]int{i, i + 1})
	}
	return mustNew(n, edges)
}

// Star returns the star S_n with center 0 (diameter 2 for n >= 3).
func Star(n int) *Graph {
	var edges [][2]int
	for i := 1; i < n; i++ {
		edges = append(edges, [2]int{0, i})
	}
	return mustNew(n, edges)
}

// GapScheduler is the step-gap side a HopScheduler delegates to.
type GapScheduler interface {
	Gap(proc int) sim.Duration
}

// HopScheduler adapts a point-to-point topology to the message-passing
// executor: a broadcast's delay to each destination is the sum of
// independent per-hop delays in [H1, H2] along a shortest path (a message
// to oneself takes one hop, modeling the loopback the abstract model's
// buf_p write implies).
type HopScheduler struct {
	Graph  *Graph
	Gaps   GapScheduler
	H1, H2 sim.Duration
	rng    *sim.RNG
}

// NewHopScheduler builds a deterministic hop scheduler.
func NewHopScheduler(g *Graph, gaps GapScheduler, h1, h2 sim.Duration, seed uint64) (*HopScheduler, error) {
	if h1 < 0 || h2 < h1 {
		return nil, fmt.Errorf("topo: invalid hop delay range [%v,%v]", h1, h2)
	}
	return &HopScheduler{Graph: g, Gaps: gaps, H1: h1, H2: h2, rng: sim.NewRNG(seed)}, nil
}

// Gap implements mp.Scheduler.
func (h *HopScheduler) Gap(proc int) sim.Duration { return h.Gaps.Gap(proc) }

// Delay implements mp.Scheduler: sum of per-hop draws over the shortest
// path.
func (h *HopScheduler) Delay(src, dst int) sim.Duration {
	hops := h.Graph.Dist(src, dst)
	if hops == 0 {
		hops = 1 // self-delivery still transits the local buffer once
	}
	var total sim.Duration
	for i := 0; i < hops; i++ {
		total += h.rng.DurationBetween(h.H1, h.H2)
	}
	return total
}

// EffectiveDelayBounds returns the abstract-model delay interval [d1, d2]
// that admits every delay this scheduler can produce: d1 = H1 (one hop
// minimum) and d2 = Diameter * H2 (paper Section 1, conversion note 1).
func (h *HopScheduler) EffectiveDelayBounds() (d1, d2 sim.Duration) {
	diam := h.Graph.Diameter()
	if diam == 0 {
		diam = 1
	}
	return h.H1, sim.Duration(diam) * h.H2
}
