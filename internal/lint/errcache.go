package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Errcache machine-checks the PR 5 cache invariant "errors are never
// cached": a run cache must only ever hold verified results, because a hit
// is returned to any number of callers without re-running — caching a value
// produced alongside a non-nil error would replay the failure's partial
// data as a success forever. For every RunCacher.Put (matched structurally:
// Put(string, any) with a Get(string) (any, bool) sibling, so the
// in-memory engine.RunCache and the tiered disk cache both match), the
// analyzer traces the cached value back through the function's def/use
// chains to the calls that produced it; if any such call also yielded an
// error, that error must be checked on the path to the Put — an
// `if err != nil` with a terminating body between the definition and the
// Put, or the Put nested under `if err == nil` (or the else of `!= nil`).
// Discarding the error with `_` counts as unchecked: the invariant wants
// the check visible.
var Errcache = &Analyzer{
	Name: "errcache",
	Doc:  "RunCacher.Put must be unreachable while the cached value's error is unchecked (errors are never cached)",
	Run:  runErrcache,
}

func runErrcache(pass *Pass) error {
	for _, fn := range collectFuncs(pass.Files) {
		checkErrcacheFunc(pass, fn.decl)
	}
	return nil
}

// errOrigin is one call site that produced a value together with an error:
// `v, err := run()`. values are the non-error results, errObj the error
// (nil when it was discarded with _).
type errOrigin struct {
	pos    token.Pos
	values map[types.Object]bool
	errObj types.Object
}

// errGuard is one `err ==/!= nil` if-statement in the function.
type errGuard struct {
	stmt     *ast.IfStmt
	errObj   types.Object
	isNotNil bool
}

func checkErrcacheFunc(pass *Pass, decl *ast.FuncDecl) {
	info := pass.TypesInfo

	var origins []*errOrigin
	var guards []errGuard
	var puts []*ast.CallExpr
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if o := originOf(info, n); o != nil {
				origins = append(origins, o)
			}
		case *ast.IfStmt:
			if obj, notNil := nilCheck(info, n.Cond); obj != nil {
				guards = append(guards, errGuard{stmt: n, errObj: obj, isNotNil: notNil})
			}
		case *ast.CallExpr:
			if isRunCacherPut(info, n) {
				puts = append(puts, n)
			}
		}
		return true
	})
	if len(puts) == 0 || len(origins) == 0 {
		return
	}

	for _, origin := range origins {
		// Which values derive from this origin? Seed the taint with its
		// result objects; any call fed a derived value derives too
		// (sum := core.Summarize(rep) stays tied to rep's error).
		fl := analyzeFlow(info, decl.Body, taintRules{
			sourceExpr: func(e ast.Expr) bool {
				id, ok := e.(*ast.Ident)
				return ok && origin.values[info.Uses[id]]
			},
			taintedCall: func(c *ast.CallExpr, argTainted func(ast.Expr) bool) bool {
				for _, a := range c.Args {
					if argTainted(a) {
						return true
					}
				}
				return false
			},
		})
		for _, put := range puts {
			if put.Pos() < origin.pos || !fl.taintedExpr(put.Args[1]) {
				continue
			}
			if origin.errObj == nil {
				pass.Reportf(put.Pos(), "cached value's error was discarded with _; errors are never cached, check it before Put")
				continue
			}
			if !errChecked(origin, put, guards) {
				pass.Reportf(put.Pos(), "Put is reachable while %s may be non-nil; errors are never cached — guard with `if %s != nil` before caching", origin.errObj.Name(), origin.errObj.Name())
			}
		}
	}
}

// originOf recognizes `v, err := call(...)` (and `=`) with exactly one
// error-typed target among several results, returning the origin, or nil.
func originOf(info *types.Info, as *ast.AssignStmt) *errOrigin {
	if len(as.Lhs) < 2 || len(as.Rhs) != 1 {
		return nil
	}
	if _, ok := as.Rhs[0].(*ast.CallExpr); !ok {
		return nil
	}
	o := &errOrigin{pos: as.Pos(), values: make(map[types.Object]bool)}
	sawErr := false
	for _, lhs := range as.Lhs {
		id, ok := lhs.(*ast.Ident)
		if !ok {
			return nil
		}
		// The blank identifier gets a real object in info.Defs; treat it as
		// a discard, never as a named error.
		if id.Name == "_" {
			sawErr = sawErr || blankDiscardedError(info, as, id)
			continue
		}
		obj := info.Defs[id]
		if obj == nil {
			obj = info.Uses[id]
		}
		if obj == nil {
			continue
		}
		if isErrorType(obj.Type()) {
			o.errObj = obj
			sawErr = true
			continue
		}
		o.values[obj] = true
	}
	if !sawErr || len(o.values) == 0 {
		return nil
	}
	return o
}

// blankDiscardedError reports whether the blank identifier at id discards
// an error result of the assignment's call.
func blankDiscardedError(info *types.Info, as *ast.AssignStmt, id *ast.Ident) bool {
	call := as.Rhs[0].(*ast.CallExpr)
	tv, ok := info.Types[call]
	if !ok {
		return false
	}
	tuple, ok := tv.Type.(*types.Tuple)
	if !ok {
		return false
	}
	for i, lhs := range as.Lhs {
		if lhs == ast.Expr(id) && i < tuple.Len() {
			return isErrorType(tuple.At(i).Type())
		}
	}
	return false
}

// errChecked reports whether origin's error is checked on the way to put:
// a terminating `if err != nil` between the origin and the Put, or the Put
// nested in the success branch of a nil comparison.
func errChecked(origin *errOrigin, put *ast.CallExpr, guards []errGuard) bool {
	for _, g := range guards {
		if g.errObj != origin.errObj {
			continue
		}
		// Guards attached to the same statement that defines the error
		// (`if v, err := f(); err != nil`) begin at the if, which can sit
		// at the origin's own position — accept guards at or after it.
		if g.stmt.Pos() < origin.pos {
			continue
		}
		if g.isNotNil {
			if within(put.Pos(), g.stmt.Else) {
				return true // Put in the else of `err != nil`
			}
			if terminates(g.stmt.Body) && g.stmt.End() <= put.Pos() {
				return true // failure path returned before the Put
			}
		} else {
			if within(put.Pos(), g.stmt.Body) {
				return true // Put under `err == nil`
			}
		}
	}
	return false
}

// within reports whether pos falls inside node (nil-safe).
func within(pos token.Pos, node ast.Node) bool {
	if node == nil {
		return false
	}
	return node.Pos() <= pos && pos < node.End()
}
