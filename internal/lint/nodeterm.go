package lint

import (
	"go/ast"
	"strings"
)

// Nodeterm forbids nondeterminism sources inside the deterministic
// simulator packages. Table 1 results must be byte-identical across seeds
// and parallelism levels, so simulator code may not consult the wall clock
// (time.Now, time.Since, time.Sleep, timers), global randomness (math/rand,
// math/rand/v2 — internal/sim.RNG exists precisely so that schedules are
// reproducible across Go versions), or the environment (os.Getenv and
// friends). The engine's wall-clock accounting is the sanctioned exception,
// waived line by line with //lint:allow nodeterm.
var Nodeterm = &Analyzer{
	Name: "nodeterm",
	Doc:  "forbid wall-clock, global randomness and environment reads in deterministic packages",
	Run:  runNodeterm,
}

// deterministicPkgs are the exact import paths of the packages whose
// behavior must be a pure function of their inputs.
var deterministicPkgs = map[string]bool{
	"sessionproblem/internal/sim":       true,
	"sessionproblem/internal/sm":        true,
	"sessionproblem/internal/mp":        true,
	"sessionproblem/internal/timing":    true,
	"sessionproblem/internal/core":      true,
	"sessionproblem/internal/adversary": true,
	"sessionproblem/internal/model":     true,
	"sessionproblem/internal/explore":   true,
	"sessionproblem/internal/engine":    true,
	"sessionproblem/internal/fault":     true,
	"sessionproblem/internal/arena":     true,
	// The persistence and presentation layers joined the set once the
	// daemon made cached results long-lived: a wall-clock or environment
	// read in the disk cache's encode/decode path, the shared flag
	// helpers, or the wire codec would make persisted and served results
	// depend on when and where they were produced.
	"sessionproblem/internal/diskcache": true,
	"sessionproblem/internal/cmdflags":  true,
	"sessionproblem/wire":               true,
	// The run journal is replayed into the cache on resume, so its frames
	// feed future results the same way disk-cache objects do; its only
	// sanctioned environment read is the crash-test gate, waived at the
	// read site.
	"sessionproblem/internal/journal": true,
	// The large-n substrates: the streaming certifier's counts must equal
	// the materialized trace's byte for byte, and the generated topology
	// families must be pure functions of (family, n, seed) — a graph drawn
	// from global randomness would change every diameter-sweep result.
	"sessionproblem/internal/certify": true,
	"sessionproblem/internal/topo":    true,
}

// deterministicPrefixes extends the set to whole subtrees (every session
// algorithm).
var deterministicPrefixes = []string{
	"sessionproblem/internal/alg/",
}

// IsDeterministicPkg reports whether the package at path is in the
// deterministic set nodeterm polices. Test variants ("pkg [pkg.test]",
// external "pkg_test" packages) inherit their base package's membership:
// the invariants hold in test helpers too.
func IsDeterministicPkg(path string) bool {
	path = BasePkgPath(path)
	if deterministicPkgs[path] {
		return true
	}
	for _, p := range deterministicPrefixes {
		if strings.HasPrefix(path, p) {
			return true
		}
	}
	return false
}

// forbiddenFuncs maps package path to the selectors nodeterm rejects.
var forbiddenFuncs = map[string]map[string]bool{
	"time": {
		"Now": true, "Since": true, "Until": true, "Sleep": true,
		"After": true, "Tick": true, "NewTimer": true, "NewTicker": true,
	},
	"os": {
		"Getenv": true, "LookupEnv": true, "Environ": true,
	},
}

// forbiddenImports are rejected wholesale.
var forbiddenImports = map[string]string{
	"math/rand":    "use internal/sim.RNG so schedules stay reproducible",
	"math/rand/v2": "use internal/sim.RNG so schedules stay reproducible",
}

func runNodeterm(pass *Pass) error {
	if !IsDeterministicPkg(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		for _, spec := range f.Imports {
			path := strings.Trim(spec.Path.Value, `"`)
			if why, ok := forbiddenImports[path]; ok {
				pass.Reportf(spec.Pos(), "import of %s in deterministic package %s: %s", path, pass.Pkg.Path(), why)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			expr, ok := n.(ast.Expr)
			if !ok {
				return true
			}
			pkgPath, name := pkgFunc(pass.TypesInfo, expr)
			if pkgPath == "" {
				return true
			}
			if funcs, ok := forbiddenFuncs[pkgPath]; ok && funcs[name] {
				pass.Reportf(n.Pos(), "%s.%s in deterministic package %s: simulator results must not depend on wall-clock time or the environment", pkgPath, name, pass.Pkg.Path())
			}
			return true
		})
	}
	return nil
}
