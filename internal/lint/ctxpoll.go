package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Ctxpoll enforces the executors' polling contract from the parallel
// engine: any potentially unbounded loop in a function that receives a
// context.Context must poll the context, or cancellation and timeouts
// stall mid-computation. The simulator executors poll every 1024 steps
// (sm/mp ctxCheckInterval); a loop with no fixed iteration bound — `for {`
// or `for cond {` — can exceed that, so its body must reference a
// context-typed value (ctx.Err(), ctx.Done(), or a call that is handed the
// context). Counted `for i := ...; ...; i++` and `range` loops are bounded
// by their data and are not reported.
var Ctxpoll = &Analyzer{
	Name: "ctxpoll",
	Doc:  "potentially unbounded loops in context-aware functions must poll their context",
	Run:  runCtxpoll,
}

func runCtxpoll(pass *Pass) error {
	for _, f := range pass.Files {
		// A function literal nested in a context-aware function is walked as
		// part of the outer body; reported tracks loop positions so it is
		// not reported twice when the literal has a context param itself.
		reported := make(map[token.Pos]bool)
		ast.Inspect(f, func(n ast.Node) bool {
			var ftype *ast.FuncType
			var body *ast.BlockStmt
			switch n := n.(type) {
			case *ast.FuncDecl:
				ftype, body = n.Type, n.Body
			case *ast.FuncLit:
				ftype, body = n.Type, n.Body
			default:
				return true
			}
			if body == nil || !hasContextParam(pass.TypesInfo, ftype) {
				return true
			}
			checkLoops(pass, body, reported)
			return true
		})
	}
	return nil
}

// hasContextParam reports whether the function signature takes a
// context.Context.
func hasContextParam(info *types.Info, ftype *ast.FuncType) bool {
	if ftype.Params == nil {
		return false
	}
	for _, field := range ftype.Params.List {
		if tv, ok := info.Types[field.Type]; ok && isContextType(tv.Type) {
			return true
		}
	}
	return false
}

// checkLoops reports unbounded loops in body that never touch a context.
// Nested function literals are walked too: they close over the context, so
// the contract follows them in.
func checkLoops(pass *Pass, body *ast.BlockStmt, reported map[token.Pos]bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		loop, ok := n.(*ast.ForStmt)
		if !ok {
			return true
		}
		// Counted loops (init/post present) are bounded by their data.
		if loop.Init != nil || loop.Post != nil {
			return true
		}
		polls := referencesContext(pass.TypesInfo, loop.Body) ||
			(loop.Cond != nil && referencesContext(pass.TypesInfo, loop.Cond))
		if !reported[loop.Pos()] && !polls {
			reported[loop.Pos()] = true
			pass.Reportf(loop.Pos(), "potentially unbounded loop in a context-aware function never polls the context; add a ctx.Err() check (executors poll every 1024 steps)")
		}
		return true
	})
}

// referencesContext reports whether any identifier inside n has type
// context.Context — a ctx.Err()/ctx.Done() poll, a select on ctx, or a call
// that is handed the context all qualify.
func referencesContext(info *types.Info, n ast.Node) bool {
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		id, ok := m.(*ast.Ident)
		if !ok || found {
			return !found
		}
		if obj := info.Uses[id]; obj != nil && isContextType(obj.Type()) {
			found = true
		}
		return !found
	})
	return found
}

func isContextType(t types.Type) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}
