// Package linttest runs a lint analyzer over a fixture directory and
// checks its diagnostics against expectations embedded in the fixtures,
// in the style of golang.org/x/tools/go/analysis/analysistest:
//
//	for k := range m {
//		fmt.Println(k) // want `fmt call inside map iteration`
//	}
//
// Every `// want` comment must be matched by a diagnostic on its line, and
// every diagnostic must match a `// want` on its line. Several backquoted
// regular expressions may follow one `// want`.
package linttest

import (
	"path/filepath"
	"regexp"
	"sort"
	"testing"

	"sessionproblem/internal/lint"
)

// wantRE matches one backquoted or double-quoted pattern.
var wantRE = regexp.MustCompile("`([^`]*)`|\"([^\"]*)\"")

// Run loads dir's fixture files as a package with import path pkgPath,
// applies the analyzer, and reports expectation mismatches on t. The
// import path is how a fixture opts in to a path-predicated analyzer
// (nodeterm's deterministic set, facadeonly's examples tree, panicmsg's
// internal tree).
func Run(t *testing.T, a *lint.Analyzer, dir, pkgPath string) {
	t.Helper()
	files, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no fixture files in %s (%v)", dir, err)
	}
	sort.Strings(files)
	pkg, err := lint.LoadFiles("", pkgPath, files...)
	if err != nil {
		t.Fatal(err)
	}
	diags, err := lint.Check(pkg.Fset, pkg.Files, pkg.Types, pkg.Info, []*lint.Analyzer{a})
	if err != nil {
		t.Fatal(err)
	}

	type key struct {
		file string
		line int
	}
	wants := make(map[key][]*regexp.Regexp)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				idx := indexWant(text)
				if idx < 0 {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, m := range wantRE.FindAllStringSubmatch(text[idx:], -1) {
					pat := m[1]
					if pat == "" {
						pat = m[2]
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want pattern %q: %v", pos, pat, err)
					}
					wants[key{pos.Filename, pos.Line}] = append(wants[key{pos.Filename, pos.Line}], re)
				}
			}
		}
	}

	matched := make(map[key][]bool)
	for k, res := range wants {
		matched[k] = make([]bool, len(res))
	}
	for _, d := range diags {
		k := key{d.Pos.Filename, d.Pos.Line}
		ok := false
		for i, re := range wants[k] {
			if re.MatchString(d.Message) {
				matched[k][i] = true
				ok = true
			}
		}
		if !ok {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for k, res := range wants {
		for i, re := range res {
			if !matched[k][i] {
				t.Errorf("%s:%d: no diagnostic matched want %q", k.file, k.line, re)
			}
		}
	}
}

// indexWant returns the offset of a "// want" marker in a comment, or -1.
func indexWant(text string) int {
	for i := 0; i+7 <= len(text); i++ {
		if text[i:i+7] == "// want" || (i == 0 && len(text) >= 7 && text[:7] == "//want ") {
			return i + 7
		}
	}
	return -1
}

// RunClean asserts the analyzer produces no diagnostics over dir (used for
// negative fixtures that deliberately carry no want comments).
func RunClean(t *testing.T, a *lint.Analyzer, dir, pkgPath string) {
	t.Helper()
	files, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no fixture files in %s (%v)", dir, err)
	}
	pkg, err := lint.LoadFiles("", pkgPath, files...)
	if err != nil {
		t.Fatal(err)
	}
	diags, err := lint.Check(pkg.Fset, pkg.Files, pkg.Types, pkg.Info, []*lint.Analyzer{a})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("unexpected diagnostic: %s", d)
	}
}
