package lint

import (
	"strings"
)

// Facadeonly keeps the examples honest as external-usage documentation:
// code under examples/ demonstrates what a real importer of this module can
// write, and a real importer cannot reach sessionproblem/internal/....
// Every example must therefore go through the root sessionproblem facade.
// If an example needs a capability the facade lacks, the facade grows a
// hook — the example does not reach around it.
var Facadeonly = &Analyzer{
	Name: "facadeonly",
	Doc:  "examples must import the public sessionproblem facade, never sessionproblem/internal/...",
	Run:  runFacadeonly,
}

const (
	examplesPrefix = "sessionproblem/examples/"
	internalPrefix = "sessionproblem/internal"
)

func runFacadeonly(pass *Pass) error {
	if !strings.HasPrefix(pass.Pkg.Path(), examplesPrefix) {
		return nil
	}
	for _, f := range pass.Files {
		for _, spec := range f.Imports {
			path := strings.Trim(spec.Path.Value, `"`)
			if path == internalPrefix || strings.HasPrefix(path, internalPrefix+"/") {
				pass.Reportf(spec.Pos(), "example imports %s; examples document external usage and must use the sessionproblem facade", path)
			}
		}
	}
	return nil
}
