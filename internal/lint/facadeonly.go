package lint

import (
	"strings"
)

// Facadeonly keeps the examples honest as external-usage documentation:
// code under examples/ demonstrates what a real importer of this module can
// write, and a real importer cannot reach sessionproblem/internal/....
// Every example must therefore go through the root sessionproblem facade.
// If an example needs a capability the facade lacks, the facade grows a
// hook — the example does not reach around it.
var Facadeonly = &Analyzer{
	Name: "facadeonly",
	Doc:  "examples must import the public sessionproblem facade, never sessionproblem/internal/...",
	Run:  runFacadeonly,
}

const (
	examplesPrefix = "sessionproblem/examples/"
	internalPrefix = "sessionproblem/internal"
)

// facadeonlyExempt lists the import paths examples may use in addition to
// the facade. wire is the public result-envelope package (an example that
// archives or diffs daemon output legitimately decodes it); the disk cache
// and the shared flag helpers are quasi-public integration seams — an
// example wiring a persistent cache under a custom RunCacher, or matching
// the CLI tools' flag conventions, reaches them pending their promotion to
// the facade. Everything else under internal/ stays off limits: if an
// example needs a capability, the facade grows a hook.
var facadeonlyExempt = map[string]bool{
	"sessionproblem/wire":               true,
	"sessionproblem/internal/diskcache": true,
	"sessionproblem/internal/cmdflags":  true,
}

// IsFacadeExempt reports whether examples may import the package at path
// even though it is not the facade.
func IsFacadeExempt(path string) bool { return facadeonlyExempt[path] }

func runFacadeonly(pass *Pass) error {
	if !strings.HasPrefix(BasePkgPath(pass.Pkg.Path()), examplesPrefix) {
		return nil
	}
	for _, f := range pass.Files {
		for _, spec := range f.Imports {
			path := strings.Trim(spec.Path.Value, `"`)
			if facadeonlyExempt[path] {
				continue
			}
			if path == internalPrefix || strings.HasPrefix(path, internalPrefix+"/") {
				pass.Reportf(spec.Pos(), "example imports %s; examples document external usage and must use the sessionproblem facade", path)
			}
		}
	}
	return nil
}
