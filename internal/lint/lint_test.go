package lint_test

import (
	"strings"
	"testing"

	"sessionproblem/internal/lint"
	"sessionproblem/internal/lint/linttest"
)

func TestNodetermFixtures(t *testing.T) {
	linttest.Run(t, lint.Nodeterm, "testdata/nodeterm/det", "sessionproblem/internal/alg/detfixture")
}

func TestNodetermIgnoresNondeterministicPackages(t *testing.T) {
	linttest.RunClean(t, lint.Nodeterm, "testdata/nodeterm/free", "sessionproblem/cmd/freefixture")
}

// The fault-injection layer must itself be deterministic: a fault plan is a
// pure function of its seed. This fixture pins internal/fault inside the
// nodeterm set so a wall clock or math/rand can never leak into plans.
func TestNodetermCoversFaultPackage(t *testing.T) {
	linttest.Run(t, lint.Nodeterm, "testdata/nodeterm/fault", "sessionproblem/internal/fault")
}

// The scratch arenas back recorded traces, so internal/arena sits in the
// nodeterm set too: nondeterministic capacity or recycling decisions would
// silently leak into results via reused backing arrays.
func TestNodetermCoversArenaPackage(t *testing.T) {
	linttest.Run(t, lint.Nodeterm, "testdata/nodeterm/arena", "sessionproblem/internal/arena")
}

func TestMaprangeFixtures(t *testing.T) {
	linttest.Run(t, lint.Maprange, "testdata/maprange", "sessionproblem/internal/maprangefixture")
}

func TestCtxpollFixtures(t *testing.T) {
	linttest.Run(t, lint.Ctxpoll, "testdata/ctxpoll", "sessionproblem/internal/ctxpollfixture")
}

func TestFacadeonlyFlagsExamples(t *testing.T) {
	linttest.Run(t, lint.Facadeonly, "testdata/facadeonly/example", "sessionproblem/examples/demofixture")
}

func TestFacadeonlyIgnoresCommands(t *testing.T) {
	linttest.RunClean(t, lint.Facadeonly, "testdata/facadeonly/cmd", "sessionproblem/cmd/demofixture")
}

func TestPanicmsgFixtures(t *testing.T) {
	linttest.Run(t, lint.Panicmsg, "testdata/panicmsg/internal", "sessionproblem/internal/pm")
}

func TestPanicmsgIgnoresExternalPackages(t *testing.T) {
	linttest.RunClean(t, lint.Panicmsg, "testdata/panicmsg/external", "sessionproblem/extfixture")
}

// TestSuiteRunsCleanOverRepo is the acceptance gate: the shipped tree has
// no outstanding diagnostics (violations are either fixed or carry an
// explicit //lint:allow directive).
func TestSuiteRunsCleanOverRepo(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	pkgs, err := lint.Load("../..", "./...")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 20 {
		t.Fatalf("suspiciously few packages loaded: %d", len(pkgs))
	}
	sawLint := false
	for _, pkg := range pkgs {
		if strings.HasSuffix(pkg.Path, "internal/lint") {
			sawLint = true
		}
		diags, err := lint.Check(pkg.Fset, pkg.Files, pkg.Types, pkg.Info, lint.Analyzers())
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range diags {
			t.Errorf("%s", d)
		}
	}
	if !sawLint {
		t.Error("module walk did not include internal/lint itself")
	}
}

// TestMaprangeAuditedPackagesStayClean is the regression gate for the
// map-iteration audit of the result-producing packages: aggregation in
// internal/model, internal/harness and internal/check must never let map
// iteration order escape into results (the only map ranges there today are
// order-insensitive comparisons or map-to-map builds, and it must stay
// that way).
func TestMaprangeAuditedPackagesStayClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks packages")
	}
	pkgs, err := lint.Load("../..", "./internal/model", "./internal/harness", "./internal/check")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 3 {
		t.Fatalf("expected 3 audited packages, loaded %d", len(pkgs))
	}
	for _, pkg := range pkgs {
		diags, err := lint.Check(pkg.Fset, pkg.Files, pkg.Types, pkg.Info, []*lint.Analyzer{lint.Maprange})
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range diags {
			t.Errorf("%s", d)
		}
	}
}

func TestDeterministicSetCoversSimulatorPackages(t *testing.T) {
	for _, path := range []string{
		"sessionproblem/internal/sim",
		"sessionproblem/internal/sm",
		"sessionproblem/internal/mp",
		"sessionproblem/internal/timing",
		"sessionproblem/internal/core",
		"sessionproblem/internal/adversary",
		"sessionproblem/internal/model",
		"sessionproblem/internal/explore",
		"sessionproblem/internal/engine",
		"sessionproblem/internal/fault",
		"sessionproblem/internal/alg/periodic",
	} {
		if !lint.IsDeterministicPkg(path) {
			t.Errorf("%s should be in the deterministic set", path)
		}
	}
	for _, path := range []string{
		"sessionproblem",
		"sessionproblem/internal/harness",
		"sessionproblem/internal/lint",
		"sessionproblem/cmd/sessiontable",
	} {
		if lint.IsDeterministicPkg(path) {
			t.Errorf("%s should not be in the deterministic set", path)
		}
	}
}
