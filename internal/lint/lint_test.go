package lint_test

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"sessionproblem/internal/lint"
	"sessionproblem/internal/lint/linttest"
)

func TestNodetermFixtures(t *testing.T) {
	linttest.Run(t, lint.Nodeterm, "testdata/nodeterm/det", "sessionproblem/internal/alg/detfixture")
}

func TestNodetermIgnoresNondeterministicPackages(t *testing.T) {
	linttest.RunClean(t, lint.Nodeterm, "testdata/nodeterm/free", "sessionproblem/cmd/freefixture")
}

// The fault-injection layer must itself be deterministic: a fault plan is a
// pure function of its seed. This fixture pins internal/fault inside the
// nodeterm set so a wall clock or math/rand can never leak into plans.
func TestNodetermCoversFaultPackage(t *testing.T) {
	linttest.Run(t, lint.Nodeterm, "testdata/nodeterm/fault", "sessionproblem/internal/fault")
}

// The scratch arenas back recorded traces, so internal/arena sits in the
// nodeterm set too: nondeterministic capacity or recycling decisions would
// silently leak into results via reused backing arrays.
func TestNodetermCoversArenaPackage(t *testing.T) {
	linttest.Run(t, lint.Nodeterm, "testdata/nodeterm/arena", "sessionproblem/internal/arena")
}

func TestMaprangeFixtures(t *testing.T) {
	linttest.Run(t, lint.Maprange, "testdata/maprange", "sessionproblem/internal/maprangefixture")
}

func TestCtxpollFixtures(t *testing.T) {
	linttest.Run(t, lint.Ctxpoll, "testdata/ctxpoll", "sessionproblem/internal/ctxpollfixture")
}

func TestFacadeonlyFlagsExamples(t *testing.T) {
	linttest.Run(t, lint.Facadeonly, "testdata/facadeonly/example", "sessionproblem/examples/demofixture")
}

func TestFacadeonlyIgnoresCommands(t *testing.T) {
	linttest.RunClean(t, lint.Facadeonly, "testdata/facadeonly/cmd", "sessionproblem/cmd/demofixture")
}

func TestPanicmsgFixtures(t *testing.T) {
	linttest.Run(t, lint.Panicmsg, "testdata/panicmsg/internal", "sessionproblem/internal/pm")
}

func TestPanicmsgIgnoresExternalPackages(t *testing.T) {
	linttest.RunClean(t, lint.Panicmsg, "testdata/panicmsg/external", "sessionproblem/extfixture")
}

// TestSuiteRunsCleanOverRepo is the acceptance gate: the shipped tree —
// test files included, the surface cmd/sessionlint checks by default — has
// no outstanding diagnostics (violations are either fixed or carry an
// explicit //lint:allow directive).
func TestSuiteRunsCleanOverRepo(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	pkgs, err := lint.LoadTests("../..", true, "./...")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 20 {
		t.Fatalf("suspiciously few packages loaded: %d", len(pkgs))
	}
	sawLint := false
	for _, pkg := range pkgs {
		if strings.HasSuffix(pkg.Path, "internal/lint") {
			sawLint = true
		}
		diags, err := lint.Check(pkg.Fset, pkg.Files, pkg.Types, pkg.Info, lint.Analyzers())
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range diags {
			t.Errorf("%s", d)
		}
	}
	if !sawLint {
		t.Error("module walk did not include internal/lint itself")
	}
}

// TestMaprangeAuditedPackagesStayClean is the regression gate for the
// map-iteration audit of the result-producing packages: aggregation in
// internal/model, internal/harness and internal/check must never let map
// iteration order escape into results (the only map ranges there today are
// order-insensitive comparisons or map-to-map builds, and it must stay
// that way).
func TestMaprangeAuditedPackagesStayClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks packages")
	}
	pkgs, err := lint.Load("../..", "./internal/model", "./internal/harness", "./internal/check")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 3 {
		t.Fatalf("expected 3 audited packages, loaded %d", len(pkgs))
	}
	for _, pkg := range pkgs {
		diags, err := lint.Check(pkg.Fset, pkg.Files, pkg.Types, pkg.Info, []*lint.Analyzer{lint.Maprange})
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range diags {
			t.Errorf("%s", d)
		}
	}
}

func TestDeterministicSetCoversSimulatorPackages(t *testing.T) {
	for _, path := range []string{
		"sessionproblem/internal/sim",
		"sessionproblem/internal/sm",
		"sessionproblem/internal/mp",
		"sessionproblem/internal/timing",
		"sessionproblem/internal/core",
		"sessionproblem/internal/adversary",
		"sessionproblem/internal/model",
		"sessionproblem/internal/explore",
		"sessionproblem/internal/engine",
		"sessionproblem/internal/fault",
		"sessionproblem/internal/alg/periodic",
	} {
		if !lint.IsDeterministicPkg(path) {
			t.Errorf("%s should be in the deterministic set", path)
		}
	}
	for _, path := range []string{
		"sessionproblem",
		"sessionproblem/internal/harness",
		"sessionproblem/internal/lint",
		"sessionproblem/cmd/sessiontable",
	} {
		if lint.IsDeterministicPkg(path) {
			t.Errorf("%s should not be in the deterministic set", path)
		}
	}
}

func TestScratchaliasFixtures(t *testing.T) {
	linttest.Run(t, lint.Scratchalias, "testdata/scratchalias", "sessionproblem/internal/consumerfixture")
}

// The scratch implementation packages may alias scratch memory freely —
// that is their whole job — so the same fixture loaded under an
// implementation path must be silent.
func TestScratchaliasIgnoresImplementationPackages(t *testing.T) {
	linttest.RunClean(t, lint.Scratchalias, "testdata/nodeterm/det", "sessionproblem/internal/sm")
}

func TestErrcacheFixtures(t *testing.T) {
	linttest.Run(t, lint.Errcache, "testdata/errcache", "sessionproblem/internal/errcachefixture")
}

func TestWiretagDriftFixture(t *testing.T) {
	linttest.Run(t, lint.Wiretag, "testdata/wiretag/drift", "sessionproblem/wire")
}

// TestWiretagCleanFixture checks the silent path and owns the fixture
// goldens: UPDATE_LINT_FIXTURES=1 go test ./internal/lint regenerates
// testdata/wiretag/*/schema_v1.json from the clean fixture's declarations
// (the drift fixture deliberately diverges from that same golden).
func TestWiretagCleanFixture(t *testing.T) {
	pkg, err := lint.LoadFiles("", "sessionproblem/wire", "testdata/wiretag/clean/clean.go")
	if err != nil {
		t.Fatal(err)
	}
	if os.Getenv("UPDATE_LINT_FIXTURES") != "" {
		data, err := lint.WireSchemaJSON(pkg)
		if err != nil {
			t.Fatal(err)
		}
		for _, dir := range []string{"testdata/wiretag/clean", "testdata/wiretag/drift"} {
			if err := os.WriteFile(filepath.Join(dir, lint.WireSchemaFile), data, 0o666); err != nil {
				t.Fatal(err)
			}
		}
	}
	diags, err := lint.Check(pkg.Fset, pkg.Files, pkg.Types, pkg.Info, []*lint.Analyzer{lint.Wiretag})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("unexpected diagnostic: %s", d)
	}
}

// TestWireSchemaGoldenIsCurrent recomputes the real wire package's schema
// and compares it byte-for-byte against the committed golden: a wire type
// change without `sessionlint -update-schema` fails here before it fails
// in CI.
func TestWireSchemaGoldenIsCurrent(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the wire package")
	}
	pkgs, err := lint.Load("../..", "./wire")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("expected 1 package, loaded %d", len(pkgs))
	}
	computed, err := lint.WireSchemaJSON(pkgs[0])
	if err != nil {
		t.Fatal(err)
	}
	committed, err := os.ReadFile("../../wire/" + lint.WireSchemaFile)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(computed, committed) {
		t.Errorf("wire/%s is stale; run sessionlint -update-schema and review the diff together with a wire.Version bump", lint.WireSchemaFile)
	}
}

// TestWiretagCatchesTagRename simulates the exact accident wiretag exists
// for: a json tag rename on a committed envelope field. The committed
// golden with one tag renamed must diff against itself unmodified.
func TestWiretagCatchesTagRename(t *testing.T) {
	data, err := os.ReadFile("../../wire/" + lint.WireSchemaFile)
	if err != nil {
		t.Fatal(err)
	}
	golden, err := lint.ParseWireSchema(data)
	if err != nil {
		t.Fatal(err)
	}
	renamed, err := lint.ParseWireSchema(data)
	if err != nil {
		t.Fatal(err)
	}
	fields := renamed.TypeFields("Table")
	if len(fields) == 0 {
		t.Fatal("committed schema has no Table type")
	}
	fields[0].JSON = "renamed"
	diffs := lint.DiffWireSchemas(golden, renamed)
	if len(diffs) != 1 {
		t.Fatalf("expected exactly 1 diff for a single tag rename, got %d: %v", len(diffs), diffs)
	}
	if diffs[0].Type != "Table" || !strings.Contains(diffs[0].Detail, "json tag changed") {
		t.Errorf("diff did not pin the rename: %+v", diffs[0])
	}
}

func TestNodetermCoversDiskcachePackage(t *testing.T) {
	linttest.Run(t, lint.Nodeterm, "testdata/nodeterm/diskcache", "sessionproblem/internal/diskcache")
}

func TestNodetermCoversCmdflagsPackage(t *testing.T) {
	linttest.Run(t, lint.Nodeterm, "testdata/nodeterm/cmdflags", "sessionproblem/internal/cmdflags")
}

func TestNodetermCoversWirePackage(t *testing.T) {
	linttest.Run(t, lint.Nodeterm, "testdata/nodeterm/wire", "sessionproblem/wire")
}

// The streaming certifier replaces the materialized trace, so its counts
// must be a pure function of the observed steps: nodeterm pins it.
func TestNodetermCoversCertifyPackage(t *testing.T) {
	linttest.Run(t, lint.Nodeterm, "testdata/nodeterm/certify", "sessionproblem/internal/certify")
}

// Generated topology families are part of every diameter-sweep result, so
// graph construction must be a pure function of (family, n, seed).
func TestNodetermCoversTopoPackage(t *testing.T) {
	linttest.Run(t, lint.Nodeterm, "testdata/nodeterm/topo", "sessionproblem/internal/topo")
}

func TestNodetermCoversJournalPackage(t *testing.T) {
	linttest.Run(t, lint.Nodeterm, "testdata/nodeterm/journal", "sessionproblem/internal/journal")
}

// Test variants inherit their base package's membership in the
// deterministic set: the invariants hold in test helpers too.
func TestDeterministicSetCoversTestVariants(t *testing.T) {
	for _, path := range []string{
		"sessionproblem/internal/sim [sessionproblem/internal/sim.test]",
		"sessionproblem/internal/engine_test",
		"sessionproblem/wire",
		"sessionproblem/internal/diskcache",
		"sessionproblem/internal/cmdflags",
		"sessionproblem/internal/journal",
		"sessionproblem/internal/journal_test",
	} {
		if !lint.IsDeterministicPkg(path) {
			t.Errorf("%s should be in the deterministic set", path)
		}
	}
}

func TestFacadeonlyExemptions(t *testing.T) {
	linttest.RunClean(t, lint.Facadeonly, "testdata/facadeonly/exempt", "sessionproblem/examples/exemptfixture")
	for _, path := range []string{
		"sessionproblem/wire",
		"sessionproblem/internal/diskcache",
		"sessionproblem/internal/cmdflags",
	} {
		if !lint.IsFacadeExempt(path) {
			t.Errorf("%s should be facade-exempt", path)
		}
	}
	if lint.IsFacadeExempt("sessionproblem/internal/core") {
		t.Error("internal/core must not be facade-exempt")
	}
}

// TestLoadTestsIncludesTestFiles pins the -tests loading path: the test
// variant's _test.go sources are parsed and type-checked together with the
// package proper, under the base import path.
func TestLoadTestsIncludesTestFiles(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks packages")
	}
	pkgs, err := lint.LoadTests("../..", true, "./internal/arena")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("expected the merged test variant only, loaded %d packages", len(pkgs))
	}
	pkg := pkgs[0]
	if pkg.Path != "sessionproblem/internal/arena" {
		t.Errorf("test variant checked under %q, want the base path", pkg.Path)
	}
	sawTestFile := false
	for _, f := range pkg.Files {
		if strings.HasSuffix(pkg.Fset.Position(f.Package).Filename, "_test.go") {
			sawTestFile = true
		}
	}
	if !sawTestFile {
		t.Error("test variant did not include any _test.go file")
	}

	noTests, err := lint.LoadTests("../..", false, "./internal/arena")
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range noTests {
		for _, f := range p.Files {
			if strings.HasSuffix(p.Fset.Position(f.Package).Filename, "_test.go") {
				t.Errorf("tests=false loaded %s", p.Fset.Position(f.Package).Filename)
			}
		}
	}
}

// TestCollectAllows pins the waiver inventory: the engine's wall-clock
// waivers (code and tests) are found with their analyzer and a non-empty
// justification.
func TestCollectAllows(t *testing.T) {
	allows, err := lint.CollectAllows("../..", "./internal/engine")
	if err != nil {
		t.Fatal(err)
	}
	if len(allows) < 5 {
		t.Fatalf("expected the engine's nodeterm waivers, got %d", len(allows))
	}
	sawTestFile := false
	for _, a := range allows {
		if len(a.Analyzers) != 1 || a.Analyzers[0] != "nodeterm" {
			t.Errorf("%s:%d: unexpected analyzers %v", a.File, a.Line, a.Analyzers)
		}
		if a.Reason == "" {
			t.Errorf("%s:%d: waiver without justification", a.File, a.Line)
		}
		if strings.HasSuffix(a.File, "_test.go") {
			sawTestFile = true
		}
	}
	if !sawTestFile {
		t.Error("inventory missed the test-file waivers")
	}
}
