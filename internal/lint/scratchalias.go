package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// Scratchalias machine-checks the PR 4 scratch ownership contract, which
// until now only byte-identity tests enforced at runtime: a Report produced
// by a scratch-backed run (core.RunSMScratch / RunMPScratch, or a faulted
// run whose FaultRun carries a Scratch) aliases reusable per-worker memory
// — Trace.Steps, arena-backed Accesses slices, delay logs — and is valid
// only until the next run on the same worker. Any flow that parks such a
// value somewhere that outlives the Execute call is a latent
// silent-wrong-answer: a struct-field or global store, a channel send, a
// RunCacher.Put, or a return from a declared function outside the
// documented boundary (internal/sm, internal/mp and internal/arena are the
// scratch implementation; internal/core's runners are the boundary API).
//
// The sanctioned ways out are exactly the ones the analyzer leaves alone:
// core.Summarize (deep copy into an immutable RunSummary), reading scalars,
// or running scratch-free. Returns from function literals are not policed —
// closures handing a fresh report to an aggregating caller inside the same
// package are the engine's task idiom — so the contract is enforced at
// declared-function boundaries, where ownership actually transfers.
var Scratchalias = &Analyzer{
	Name: "scratchalias",
	Doc:  "scratch-backed run data must not escape its Execute call (field/global stores, sends, caches, returns past the boundary)",
	Run:  runScratchalias,
}

// scratchImplPkgs implement the scratch machinery; inside them, aliasing
// scratch memory is the whole point.
var scratchImplPkgs = map[string]bool{
	"sessionproblem/internal/sm":    true,
	"sessionproblem/internal/mp":    true,
	"sessionproblem/internal/arena": true,
	// tree.Pool recycles published knowledge snapshots through a freelist;
	// handing out aliased buffers is its job.
	"sessionproblem/internal/tree": true,
}

// scratchReturnExempt may return scratch-aliasing values: these packages'
// exported runners are the documented ownership boundary callers opt into.
var scratchReturnExempt = map[string]bool{
	"sessionproblem/internal/core": true,
}

// scratchTypes are the named types whose data hands out aliases into
// reusable buffers.
var scratchTypes = map[string]bool{
	"sessionproblem/internal/sm.Scratch":      true,
	"sessionproblem/internal/mp.Scratch":      true,
	"sessionproblem/internal/sm.BatchScratch": true,
	"sessionproblem/internal/mp.BatchScratch": true,
	"sessionproblem/internal/core.RunScratch": true,
	"sessionproblem/internal/arena.Arena":     true,
	"sessionproblem/internal/arena.Freelist":  true,
}

// scratchRunFuncs are the package-level functions whose results always
// alias the scratch they were handed. The batch runners hand out one
// lane-scoped report per seed; every lane's report obeys the same escape
// rules as a solo run's.
var scratchRunFuncs = map[string]bool{
	"sessionproblem/internal/core.RunSMScratch": true,
	"sessionproblem/internal/core.RunMPScratch": true,
	"sessionproblem/internal/sm.RunBatch":       true,
	"sessionproblem/internal/mp.RunBatch":       true,
}

// scratchFaultFuncs alias scratch only when their FaultRun argument
// carries one.
var scratchFaultFuncs = map[string]bool{
	"sessionproblem/internal/core.RunSMFaulted": true,
	"sessionproblem/internal/core.RunMPFaulted": true,
}

const faultRunType = "sessionproblem/internal/core.FaultRun"

func runScratchalias(pass *Pass) error {
	if scratchImplPkgs[BasePkgPath(pass.Pkg.Path())] {
		return nil
	}
	rules := taintRules{
		sourceExpr: func(e ast.Expr) bool { return scratchSource(pass.TypesInfo, e) },
		taintedCall: func(c *ast.CallExpr, argTainted func(ast.Expr) bool) bool {
			return scratchCall(pass.TypesInfo, c, argTainted)
		},
	}
	for _, fn := range collectFuncs(pass.Files) {
		fl := analyzeFlow(pass.TypesInfo, fn.decl.Body, rules)
		checkScratchSinks(pass, fn.decl, fl)
	}
	return nil
}

// scratchSource: a composite literal building a FaultRun with an explicit
// non-nil Scratch is the one way taint is born without a call — the
// literal itself smuggles the scratch into the faulted runner.
func scratchSource(info *types.Info, e ast.Expr) bool {
	cl, ok := e.(*ast.CompositeLit)
	if !ok || namedType(info, e) != faultRunType {
		return false
	}
	for _, elt := range cl.Elts {
		kv, ok := elt.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		if key, ok := kv.Key.(*ast.Ident); ok && key.Name == "Scratch" {
			if id, ok := kv.Value.(*ast.Ident); ok && id.Name == "nil" {
				return false
			}
			return true
		}
	}
	return false
}

// scratchCall taints the results of the scratch-backed runners and of any
// method reaching into a scratch-typed receiver.
func scratchCall(info *types.Info, call *ast.CallExpr, argTainted func(ast.Expr) bool) bool {
	if pkgPath, name := pkgFunc(info, call.Fun); pkgPath != "" {
		qual := pkgPath + "." + name
		if scratchRunFuncs[qual] {
			return true
		}
		if scratchFaultFuncs[qual] {
			for _, a := range call.Args {
				if namedType(info, a) == faultRunType && argTainted(a) {
					return true
				}
			}
			return false
		}
	}
	// sc.Alloc(...), rs.SM.<anything>(...): methods on scratch-typed
	// values hand out views into reusable buffers.
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok && info.Selections[sel] != nil {
		if scratchTypes[namedType(info, sel.X)] {
			tv, ok := info.Types[call]
			return !ok || tv.Type == nil || refCarrying(tv.Type)
		}
	}
	return false
}

// checkScratchSinks walks one declared function after taint fixed point and
// reports every escape.
func checkScratchSinks(pass *Pass, decl *ast.FuncDecl, fl *flow) {
	escaping := escapingBases(pass, decl)
	returnExempt := scratchReturnExempt[BasePkgPath(pass.Pkg.Path())]

	// litDepth tracks whether a return statement belongs to the declared
	// function or to a nested literal (literal returns are not policed).
	var walk func(n ast.Node, litDepth int)
	walk = func(n ast.Node, litDepth int) {
		ast.Inspect(n, func(m ast.Node) bool {
			switch m := m.(type) {
			case *ast.FuncLit:
				walk(m.Body, litDepth+1)
				return false
			case *ast.ReturnStmt:
				if litDepth > 0 || returnExempt {
					return true
				}
				for _, r := range m.Results {
					if fl.taintedExpr(r) {
						pass.Reportf(r.Pos(), "scratch-backed value returned from %s past the ownership boundary; summarize it (core.Summarize) or run scratch-free", decl.Name.Name)
					}
				}
			case *ast.SendStmt:
				if fl.taintedExpr(m.Value) {
					pass.Reportf(m.Pos(), "scratch-backed value sent on a channel outlives its Execute call; copy it first")
				}
			case *ast.AssignStmt:
				checkScratchStores(pass, fl, escaping, m)
			case *ast.CallExpr:
				if isRunCacherPut(pass.TypesInfo, m) && fl.taintedExpr(m.Args[1]) {
					pass.Reportf(m.Pos(), "cached value aliases scratch memory; cache hits must be immutable (store a core.Summarize copy)")
				}
			}
			return true
		})
	}
	walk(decl.Body, 0)
}

// checkScratchStores flags assignments parking tainted data in memory the
// function does not own: package-level variables, or fields/elements of
// parameters and receivers. Stores into locally built aggregates are
// propagation, handled by the flow itself.
func checkScratchStores(pass *Pass, fl *flow, escaping map[types.Object]bool, as *ast.AssignStmt) {
	for i, lhs := range as.Lhs {
		var rhs ast.Expr
		switch {
		case len(as.Lhs) > 1 && len(as.Rhs) == 1:
			rhs = as.Rhs[0]
		case i < len(as.Rhs):
			rhs = as.Rhs[i]
		}
		if rhs == nil || !fl.taintedExpr(rhs) {
			continue
		}
		switch target := lhs.(type) {
		case *ast.Ident:
			if obj := pass.TypesInfo.Uses[target]; obj != nil && isPkgLevel(pass, obj) {
				pass.Reportf(as.Pos(), "scratch-backed value stored in package-level %s outlives every run; copy it first", obj.Name())
			}
		default:
			base := rootObject(pass.TypesInfo, lhs)
			if base == nil || scratchTypes[qualifiedName(base.Type())] {
				continue // writing into the scratch itself is bookkeeping
			}
			if isPkgLevel(pass, base) || escaping[base] {
				pass.Reportf(as.Pos(), "scratch-backed value stored into %s escapes its Execute call; copy it first (core.Summarize for reports)", base.Name())
			}
		}
	}
}

// escapingBases collects the objects whose fields are caller-visible
// memory: the receiver and every parameter of the declared function and of
// each nested literal.
func escapingBases(pass *Pass, decl *ast.FuncDecl) map[types.Object]bool {
	out := make(map[types.Object]bool)
	addFields := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, f := range fl.List {
			for _, name := range f.Names {
				if obj := pass.TypesInfo.Defs[name]; obj != nil {
					out[obj] = true
				}
			}
		}
	}
	addFields(decl.Recv)
	addFields(decl.Type.Params)
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			addFields(lit.Type.Params)
		}
		return true
	})
	return out
}

// isPkgLevel reports whether obj is a package-scope variable.
func isPkgLevel(pass *Pass, obj types.Object) bool {
	v, ok := obj.(*types.Var)
	return ok && v.Parent() == pass.Pkg.Scope()
}

// BasePkgPath strips a test-variant suffix ("pkg [pkg.test]" and the xtest
// "_test" package suffix) so path predicates treat test code as part of the
// package whose invariants it exercises. cmd/sessionlint applies it to the
// unit import paths go vet hands over for test compilations.
func BasePkgPath(path string) string {
	if i := strings.Index(path, " ["); i >= 0 {
		path = path[:i]
	}
	return strings.TrimSuffix(path, "_test")
}
