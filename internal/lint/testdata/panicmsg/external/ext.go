// Fixture loaded as sessionproblem/extfixture: the panic convention only
// applies under internal/.
package extfixture

import "errors"

func anyPanic() { panic(errors.New("whatever")) }
