// Fixture loaded as sessionproblem/internal/pm: panics must carry a
// constant "pm: ..." message in one of the accepted forms.
package pm

import (
	"errors"
	"fmt"
)

const msgBadState = "pm: bad state"

func constLiteral() { panic("pm: boom") }

func constNamed() { panic(msgBadState) }

func constConcat(err error) { panic("pm: wrap: " + err.Error()) }

func sprintfForm(n int) { panic(fmt.Sprintf("pm: n = %d", n)) }

func errorfForm(n int) { panic(fmt.Errorf("pm: n = %d", n)) }

func wrongPrefix() { panic("boom") } // want `panic message must be a constant string prefixed "pm: "`

func rawError(err error) { panic(err) } // want `panic message must be a constant string prefixed`

func nonConstant() { panic(errors.New("pm: built at runtime")) } // want `panic message must be`

func notAString() { panic(42) } // want `panic message must be`

func concatWrongSide(err error) { panic(err.Error() + "pm: suffix") } // want `panic message must be`

func waived(err error) { panic(err) } //lint:allow panicmsg fixture: legacy re-panic
