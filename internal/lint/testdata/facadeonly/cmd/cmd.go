// Fixture loaded as sessionproblem/cmd/demofixture: first-party commands
// may use internal packages; facadeonly only polices examples.
package main

import (
	"fmt"

	"sessionproblem/internal/sim"
)

func main() {
	fmt.Println(sim.NewRNG(1).Uint64())
}
