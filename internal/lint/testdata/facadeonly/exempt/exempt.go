// Negative facadeonly fixture: the exemption list. An example may decode
// wire envelopes and reach the two quasi-public integration seams
// (internal/diskcache, internal/cmdflags) in addition to the facade;
// none of these imports may be flagged.
package exemptfixture

import (
	"sessionproblem/internal/cmdflags"
	"sessionproblem/internal/diskcache"
	"sessionproblem/wire"
)

func open(dir string) (*diskcache.Store, error) {
	return diskcache.Open(dir)
}

var _ = wire.Version

var _ = cmdflags.RegisterProblem
