// Fixture loaded as sessionproblem/examples/demofixture: examples must use
// the public facade, never the internal packages.
package main

import (
	"fmt"

	"sessionproblem/internal/sim" // want `example imports sessionproblem/internal/sim`
)

func main() {
	fmt.Println(sim.NewRNG(1).Uint64())
}
