// Fixture for maprange: iteration order escaping into output is diagnosed;
// lookup-only iteration and the collect-sort-emit idiom are not.
package maprangefixture

import (
	"fmt"
	"sort"
	"strings"
)

func printEscape(m map[string]int) {
	for k := range m {
		fmt.Println(k) // want `fmt call inside map iteration`
	}
}

func appendNoSort(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want `append to keys in map iteration order with no later sort`
	}
	return keys
}

func appendThenSort(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func sendEscape(m map[string]int, ch chan<- string) {
	for k := range m {
		ch <- k // want `channel send inside map iteration`
	}
}

func builderEscape(m map[string]int) string {
	var sb strings.Builder
	for k := range m {
		sb.WriteString(k) // want `sb\.WriteString inside map iteration`
	}
	return sb.String()
}

func concatEscape(m map[string]int) string {
	out := ""
	for k := range m {
		out += k // want `string built in map iteration order`
	}
	return out
}

func lookupOnly(a, b map[string]int) bool {
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

func localOnly(m map[string]int) {
	for k := range m {
		var tmp []string
		tmp = append(tmp, k)
		_ = tmp
	}
}

func sliceRange(xs []string, ch chan<- string) {
	for _, x := range xs {
		ch <- x
	}
}

func waived(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) //lint:allow maprange fixture: order genuinely irrelevant
	}
	return keys
}
