// Pins sessionproblem/internal/cmdflags inside the nodeterm set: the shared
// flag helpers feed every CLI's run configuration, so an environment read
// here would make results depend on where they were produced.
package cmdflagsfixture

import "os"

func defaultDir() string {
	return os.Getenv("SESSION_CACHE_DIR") // want `os.Getenv in deterministic package`
}
