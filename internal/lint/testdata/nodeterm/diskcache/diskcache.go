// Pins sessionproblem/internal/diskcache inside the nodeterm set: persisted
// cache entries are long-lived, so their encode/decode path must not depend
// on when or where it ran.
package diskcachefixture

import "time"

func stamp() int64 {
	return time.Now().UnixNano() // want `time.Now in deterministic package`
}
