// Pins sessionproblem/internal/journal inside the nodeterm set: journal
// frames are replayed into the run cache on resume, so what gets written
// must not depend on when or where the run happened. The crash-test gate's
// environment read is waived at its one call site, not here.
package journalfixture

import (
	"os"
	"time"
)

func stamp() int64 {
	return time.Now().UnixNano() // want `time.Now in deterministic package`
}

func gate() string {
	return os.Getenv("SOME_GATE") // want `os.Getenv in deterministic package`
}
