// Pins sessionproblem/wire inside the nodeterm set: the wire codec shapes
// archived and served results, so global randomness (jittered ids, shuffled
// rows) would break byte-stable envelopes.
package wirefixture

import "math/rand" // want `use internal/sim.RNG`

func shuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
}
