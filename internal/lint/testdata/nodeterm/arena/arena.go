// Fixture loaded as sessionproblem/internal/arena: the scratch arenas back
// recorded traces, so any nondeterminism here (timestamped buffers, random
// chunk sizing) would leak into results — every source is diagnosed.
package arena

import (
	"math/rand" // want `import of math/rand in deterministic package`
	"time"
)

func stamp() int64 { return time.Now().UnixNano() } // want `time\.Now in deterministic package`

func chunkSize() int { return 1024 + rand.Intn(8) }

// Capacity arithmetic on durations stays legal; only wall-clock entry
// points are banned.
func ttl(d time.Duration) time.Duration { return 2 * d }
