// Fixture loaded as sessionproblem/internal/fault: fault plans must be a
// pure function of their seed, so every nondeterminism source is diagnosed —
// a wall clock or math/rand here would make fault schedules irreproducible.
package fault

import (
	"math/rand" // want `import of math/rand in deterministic package`
	"time"
)

func stamp() time.Time { return time.Now() } // want `time\.Now in deterministic package`

func jitter() { time.Sleep(time.Millisecond) } // want `time\.Sleep in deterministic package`

func roll() float64 { return rand.Float64() }

// Duration arithmetic stays legal; only wall-clock entry points are banned.
func doubled(d time.Duration) time.Duration { return 2 * d }
