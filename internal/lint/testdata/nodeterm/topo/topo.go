// Fixture loaded as sessionproblem/internal/topo: generated topology
// families must be pure functions of (family, n, seed) — a graph drawn
// from global randomness or sized by the environment would change every
// diameter-sweep result between runs.
package topo

import (
	"math/rand" // want `import of math/rand in deterministic package`
	"os"
)

func pairStubs(n int) []int { return rand.Perm(n) }

func defaultDegree() string { return os.Getenv("TOPO_DEGREE") } // want `os\.Getenv in deterministic package`
