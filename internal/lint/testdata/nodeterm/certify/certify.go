// Fixture loaded as sessionproblem/internal/certify: the streaming
// certifier's session counts stand in for the materialized trace, so any
// nondeterminism here would make the streaming and materialized paths
// disagree — every source is diagnosed.
package certify

import (
	"math/rand" // want `import of math/rand in deterministic package`
	"time"
)

func sampleSpan() bool { return rand.Intn(2) == 0 }

func deadline() time.Time { return time.Now() } // want `time\.Now in deterministic package`

// Pure arithmetic on durations stays legal; only wall-clock entry points
// are banned.
func budget(d time.Duration) time.Duration { return d / 2 }
