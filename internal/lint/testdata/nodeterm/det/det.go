// Fixture loaded as sessionproblem/internal/alg/detfixture: inside the
// deterministic set, so every nondeterminism source must be diagnosed.
package detfixture

import (
	"math/rand" // want `import of math/rand in deterministic package`
	"os"
	"time"
)

func now() time.Time { return time.Now() } // want `time\.Now in deterministic package`

func sleepy() { time.Sleep(time.Millisecond) } // want `time\.Sleep in deterministic package`

func since(t time.Time) time.Duration { return time.Since(t) } // want `time\.Since in deterministic package`

func envy() string { return os.Getenv("SESSION_DEBUG") } // want `os\.Getenv in deterministic package`

func random() int { return rand.Int() }

// Types from the time package are fine; only the wall-clock entry points
// are banned.
func scaled(d time.Duration) time.Duration { return 2 * d }

func waived() time.Time { return time.Now() } //lint:allow nodeterm fixture: sanctioned wall-clock stats

//lint:allow nodeterm fixture: directive on the line above also waives
func waivedAbove() time.Time { return time.Now() }
