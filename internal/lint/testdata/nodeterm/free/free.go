// Fixture loaded as sessionproblem/cmd/freefixture: outside the
// deterministic set, wall-clock use is legitimate (progress reporting,
// benchmarks) and nothing is diagnosed.
package freefixture

import (
	"os"
	"time"
)

func now() time.Time { return time.Now() }

func envy() string { return os.Getenv("SESSION_DEBUG") }
