// Fixtures for the scratchalias analyzer: every way scratch-backed run
// data can escape its Execute call, next to the sanctioned patterns that
// must stay clean. The package impersonates a consumer of internal/core,
// outside both the scratch implementation and the core boundary.
package consumerfixture

import (
	"context"

	"sessionproblem/internal/core"
	"sessionproblem/internal/mp"
	"sessionproblem/internal/sm"
	"sessionproblem/internal/timing"
)

// cache matches the engine.RunCacher method set structurally, the way the
// analyzer detects caches (no engine import needed).
type cache interface {
	Get(key string) (any, bool)
	Put(key string, v any)
}

type holder struct {
	rep *core.Report
	sum *core.RunSummary
}

var globalRep *core.Report

var globalSum *core.RunSummary

// storeEverywhere hits every store-shaped sink with a scratch-backed report.
func storeEverywhere(ctx context.Context, alg core.SMAlgorithm, spec core.Spec, m timing.Model, st timing.Strategy, rs *core.RunScratch, h *holder, ch chan *core.Report, c cache) error {
	rep, err := core.RunSMScratch(ctx, alg, spec, m, st, 1, rs)
	if err != nil {
		return err // errors are not scratch data; must stay clean
	}
	h.rep = rep     // want `scratch-backed value stored into h escapes`
	globalRep = rep // want `stored in package-level globalRep`
	ch <- rep       // want `sent on a channel`
	c.Put("k", rep) // want `cached value aliases scratch memory`
	return nil
}

// returnsScratch leaks through the declared-function return boundary.
func returnsScratch(ctx context.Context, alg core.MPAlgorithm, spec core.Spec, m timing.Model, st timing.Strategy, rs *core.RunScratch) *core.Report {
	rep, _ := core.RunMPScratch(ctx, alg, spec, m, st, 7, rs)
	return rep // want `returned from returnsScratch past the ownership boundary`
}

// derivedLeak follows the value through an intermediate local and a field
// read before it escapes: dataflow, not syntax.
func derivedLeak(ctx context.Context, alg core.SMAlgorithm, spec core.Spec, m timing.Model, st timing.Strategy, rs *core.RunScratch, h *holder) {
	rep, err := core.RunSMScratch(ctx, alg, spec, m, st, 3, rs)
	if err != nil {
		return
	}
	alias := rep
	trace := alias.Trace
	h.rep = &core.Report{Trace: trace} // want `scratch-backed value stored into h escapes`
}

// faultedLeak: a FaultRun literal carrying a scratch taints the faulted
// runner's report exactly like the plain scratch runners.
func faultedLeak(ctx context.Context, alg core.SMAlgorithm, spec core.Spec, m timing.Model, st timing.Strategy, rs *core.RunScratch) *core.Report {
	fr := core.FaultRun{Scratch: rs, MaxSteps: 1000}
	rep, _ := core.RunSMFaulted(ctx, alg, spec, m, st, 9, fr)
	return rep // want `returned from faultedLeak past the ownership boundary`
}

// summarizedIsClean: core.Summarize is the sanctioned deep copy; its result
// may be stored, cached and returned freely.
func summarizedIsClean(ctx context.Context, alg core.SMAlgorithm, spec core.Spec, m timing.Model, st timing.Strategy, rs *core.RunScratch, h *holder, c cache) *core.RunSummary {
	rep, err := core.RunSMScratch(ctx, alg, spec, m, st, 1, rs)
	if err != nil {
		return nil
	}
	sum := core.Summarize(rep)
	h.sum = sum
	globalSum = sum
	c.Put("k", sum)
	return sum
}

// scratchFreeIsClean: a report from the plain context runner owns its
// memory and may escape.
func scratchFreeIsClean(ctx context.Context, alg core.SMAlgorithm, spec core.Spec, m timing.Model, st timing.Strategy, h *holder) *core.Report {
	rep, err := core.RunSMContext(ctx, alg, spec, m, st, 1)
	if err != nil {
		return nil
	}
	h.rep = rep
	return rep
}

// faultFreeIsClean: a FaultRun without a scratch yields an owning report.
func faultFreeIsClean(ctx context.Context, alg core.SMAlgorithm, spec core.Spec, m timing.Model, st timing.Strategy) *core.Report {
	fr := core.FaultRun{Scratch: nil, MaxSteps: 1000}
	rep, _ := core.RunSMFaulted(ctx, alg, spec, m, st, 9, fr)
	return rep
}

// closureReturnIsClean: returns from function literals are the engine's
// task idiom — the aggregating caller inside the same Execute call reads
// scalars and drops the report before the next run reuses the scratch.
func closureReturnIsClean(ctx context.Context, alg core.SMAlgorithm, spec core.Spec, m timing.Model, st timing.Strategy, rs *core.RunScratch) func() (any, error) {
	return func() (any, error) {
		rep, err := core.RunSMScratch(ctx, alg, spec, m, st, 1, rs)
		if err != nil {
			return nil, err
		}
		return rep, nil
	}
}

// scalarReadsAreClean: ints and strings read off a scratch-backed report
// copy by value and alias nothing.
func scalarReadsAreClean(ctx context.Context, alg core.SMAlgorithm, spec core.Spec, m timing.Model, st timing.Strategy, rs *core.RunScratch) (int, bool) {
	rep, err := core.RunSMScratch(ctx, alg, spec, m, st, 1, rs)
	if err != nil {
		return 0, false
	}
	return rep.Steps(), rep.Sessions > 0
}

var globalBatch []*sm.Result

// batchLeaks: the lockstep batch runners hand out one lane-scoped result
// per seed; the slice and every element alias the BatchScratch and obey
// the same escape rules as a solo run's report.
func batchLeaks(ctx context.Context, lanes []sm.BatchLane, rs *core.RunScratch, ch chan []*mp.Result) []*sm.Result {
	res, _, err := sm.RunBatch(ctx, lanes, sm.BatchOptions{Scratch: &rs.SMBatch})
	if err != nil {
		return nil // errors are not scratch data; must stay clean
	}
	globalBatch = res // want `stored in package-level globalBatch`
	return res        // want `returned from batchLeaks past the ownership boundary`
}

func batchSendLeaks(ctx context.Context, lanes []mp.BatchLane, rs *core.RunScratch, ch chan []*mp.Result) {
	res, _, _ := mp.RunBatch(ctx, lanes, mp.BatchOptions{Scratch: &rs.MPBatch})
	ch <- res // want `sent on a channel`
}

// batchScalarsAreClean: per-lane finish times copy by value.
func batchScalarsAreClean(ctx context.Context, lanes []sm.BatchLane, rs *core.RunScratch) int64 {
	res, _, err := sm.RunBatch(ctx, lanes, sm.BatchOptions{Scratch: &rs.SMBatch})
	if err != nil || len(res) == 0 {
		return 0
	}
	return int64(res[0].Finish)
}
