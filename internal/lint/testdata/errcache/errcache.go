// Fixtures for the errcache analyzer: RunCacher.Put sites where the cached
// value's producing error is unchecked, discarded, or properly guarded.
package errcachefixture

import (
	"context"

	"sessionproblem/internal/core"
	"sessionproblem/internal/timing"
)

// cache matches the engine.RunCacher method set structurally.
type cache interface {
	Get(key string) (any, bool)
	Put(key string, v any)
}

// uncheckedPut caches a value whose error was never examined.
func uncheckedPut(ctx context.Context, alg core.SMAlgorithm, spec core.Spec, m timing.Model, st timing.Strategy, c cache) {
	rep, err := core.RunSMContext(ctx, alg, spec, m, st, 1)
	c.Put("k", rep) // want `Put is reachable while err may be non-nil`
	_ = err
}

// discardedError hides the failure with a blank identifier; the invariant
// wants the check visible.
func discardedError(ctx context.Context, alg core.SMAlgorithm, spec core.Spec, m timing.Model, st timing.Strategy, c cache) {
	rep, _ := core.RunSMContext(ctx, alg, spec, m, st, 1)
	c.Put("k", rep) // want `error was discarded with _`
}

// derivedPut caches a value derived from the failing call (the summary
// inherits the report's error obligation through the dataflow).
func derivedPut(ctx context.Context, alg core.SMAlgorithm, spec core.Spec, m timing.Model, st timing.Strategy, c cache) {
	rep, err := core.RunSMContext(ctx, alg, spec, m, st, 1)
	sum := core.Summarize(rep)
	c.Put("k", sum) // want `Put is reachable while err may be non-nil`
	_ = err
}

// lateGuard checks the error only after the Put already happened.
func lateGuard(ctx context.Context, alg core.SMAlgorithm, spec core.Spec, m timing.Model, st timing.Strategy, c cache) {
	rep, err := core.RunSMContext(ctx, alg, spec, m, st, 1)
	c.Put("k", rep) // want `Put is reachable while err may be non-nil`
	if err != nil {
		return
	}
}

// guardedPut is the canonical clean pattern: the failure path returns
// before the cache is touched.
func guardedPut(ctx context.Context, alg core.SMAlgorithm, spec core.Spec, m timing.Model, st timing.Strategy, c cache) {
	rep, err := core.RunSMContext(ctx, alg, spec, m, st, 1)
	if err != nil {
		return
	}
	c.Put("k", core.Summarize(rep))
}

// successBranchPut nests the Put under the success comparison.
func successBranchPut(ctx context.Context, alg core.SMAlgorithm, spec core.Spec, m timing.Model, st timing.Strategy, c cache) {
	rep, err := core.RunSMContext(ctx, alg, spec, m, st, 1)
	if err == nil {
		c.Put("k", rep)
	}
}

// elseBranchPut caches in the else of the failure comparison.
func elseBranchPut(ctx context.Context, alg core.SMAlgorithm, spec core.Spec, m timing.Model, st timing.Strategy, c cache) {
	rep, err := core.RunSMContext(ctx, alg, spec, m, st, 1)
	if err != nil {
		rep = nil
	} else {
		c.Put("k", rep)
	}
}

// unrelatedValuePut: the cached value does not derive from the erroring
// call, so that error imposes no obligation on the Put.
func unrelatedValuePut(ctx context.Context, alg core.SMAlgorithm, spec core.Spec, m timing.Model, st timing.Strategy, c cache) {
	_, err := core.RunSMContext(ctx, alg, spec, m, st, 1)
	c.Put("k", spec)
	_ = err
}
