// Drifted wiretag fixture: relative to the committed schema_v1.json in
// this directory (which matches the clean fixture's shape), Envelope's
// Kind field has had its json tag renamed and a new envelope type has
// appeared — both must trip the analyzer.
package wire

// Envelope's Kind tag says "type" here; the golden says "kind".
type Envelope struct { // want `Envelope.Kind json tag changed: "kind" -> "type"`
	V       int     `json:"v"`
	Kind    string  `json:"type"`
	Payload Payload `json:"payload"`
}

// Payload is unchanged from the golden.
type Payload struct {
	Name  string  `json:"name"`
	Value float64 `json:"value,omitempty"`
	raw   []byte
	Skip  int `json:"-"`
}

// Extra is not in the golden at all.
type Extra struct { // want `envelope type Extra is new`
	N int `json:"n"`
}
