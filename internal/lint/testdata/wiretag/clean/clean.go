// Clean wiretag fixture: the committed schema_v1.json next to this file
// matches these declarations exactly, so the analyzer must stay silent.
// The package impersonates sessionproblem/wire (the analyzer's path
// predicate); the golden is regenerated with
// UPDATE_LINT_FIXTURES=1 go test ./internal/lint.
package wire

// Envelope is a versioned wrapper, shaped like the real wire envelopes.
type Envelope struct {
	V       int     `json:"v"`
	Kind    string  `json:"kind"`
	Payload Payload `json:"payload"`
}

// Payload exercises the field-visibility rules: an omitempty option, an
// unexported field and a json:"-" field (both invisible on the wire).
type Payload struct {
	Name  string  `json:"name"`
	Value float64 `json:"value,omitempty"`
	raw   []byte
	Skip  int `json:"-"`
}
