// Fixture for ctxpoll: potentially unbounded loops in context-aware
// functions must reference the context; counted and range loops are exempt.
package ctxpollfixture

import "context"

func unpolled(ctx context.Context, work func() bool) {
	for work() { // want `potentially unbounded loop in a context-aware function never polls the context`
	}
}

func polled(ctx context.Context, work func() bool) error {
	for work() {
		if err := ctx.Err(); err != nil {
			return err
		}
	}
	return nil
}

func infinite(ctx context.Context, work func()) {
	for { // want `never polls the context`
		work()
	}
}

func selectLoop(ctx context.Context, ch chan int) {
	for {
		select {
		case <-ctx.Done():
			return
		case <-ch:
		}
	}
}

func delegated(ctx context.Context, step func(context.Context) bool) {
	for step(ctx) {
	}
}

func derivedContext(ctx context.Context, work func() bool) {
	sub, cancel := context.WithCancel(ctx)
	defer cancel()
	for work() {
		if sub.Err() != nil {
			return
		}
	}
}

func counted(ctx context.Context, n int) int {
	total := 0
	for i := 0; i < n; i++ {
		total += i
	}
	return total
}

func ranged(ctx context.Context, xs []int) int {
	total := 0
	for _, x := range xs {
		total += x
	}
	return total
}

func noContext(work func() bool) {
	for work() {
	}
}

func nestedLiteral(ctx context.Context, work func() bool) func() {
	return func() {
		for work() { // want `never polls the context`
		}
	}
}

func waived(ctx context.Context, work func() bool) {
	for work() { //lint:allow ctxpoll fixture: provably tiny loop
	}
}
