package lint

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
)

// Wiretag locks the wire v1 JSON contract. The wire/ envelope types and the
// facade types they embed are a frozen format: the daemon's HTTP responses,
// the CLI -json output and every archived result promise that a v1 document
// decodes forever. Go makes it dangerously easy to break that promise
// silently — add a field, rename a json tag, retype sim.Time — and nothing
// fails until a consumer mis-parses an old archive. Wiretag computes the
// JSON-tag schema of every exported envelope struct, recursively expanding
// the named struct types its fields reach (that pulls the facade's
// TableCell/HierarchyRow/SweepPoint/Report into the lock), and diffs it
// against the committed golden wire/schema_v1.json. Any drift is a lint
// error; the sanctioned workflow is `sessionlint -update-schema` plus a
// wire.Version bump reviewed together.
var Wiretag = &Analyzer{
	Name: "wiretag",
	Doc:  "wire envelope JSON schema must match the committed schema_v1.json (tag/type changes need a version bump)",
	Run:  runWiretag,
}

// WireSchemaFile is the golden schema's filename, committed next to the
// wire package sources.
const WireSchemaFile = "schema_v1.json"

// wirePkgPath is the package whose exported structs form the contract.
const wirePkgPath = "sessionproblem/wire"

// IsWirePkg reports whether the package at path carries the wire contract.
func IsWirePkg(path string) bool { return BasePkgPath(path) == wirePkgPath }

// fieldSchema is one struct field's wire identity: the Go name, the
// resolved JSON key (with ,omitempty-style options and ",inline" for
// untagged embedded fields), and the recursively rendered type.
type fieldSchema struct {
	Go   string      `json:"go"`
	JSON string      `json:"json"`
	Type *typeSchema `json:"type"`
}

// typeSchema renders a Go type's JSON shape. Exactly one branch is set.
type typeSchema struct {
	// Term is a terminal: a basic kind ("int64", "string", "bool", ...) or
	// "any" for interfaces. Named types with basic underlying render their
	// underlying — renaming sim.Time is invisible on the wire, retyping it
	// is not.
	Term   string        `json:"term,omitempty"`
	Ptr    *typeSchema   `json:"ptr,omitempty"`
	Slice  *typeSchema   `json:"slice,omitempty"`
	Array  *typeSchema   `json:"array,omitempty"`
	ArrayN int64         `json:"arrayLen,omitempty"`
	Key    *typeSchema   `json:"key,omitempty"`
	Value  *typeSchema   `json:"value,omitempty"`
	Struct string        `json:"struct,omitempty"`
	Fields []fieldSchema `json:"fields,omitempty"`
	Cycle  string        `json:"cycle,omitempty"`
}

// WireSchema is the golden file's document shape. Types maps exported
// envelope type names to their fields; encoding/json sorts the keys, so
// the marshaled form is deterministic.
type WireSchema struct {
	V     int                      `json:"v"`
	Types map[string][]fieldSchema `json:"types"`
}

// ParseWireSchema decodes a golden schema document.
func ParseWireSchema(data []byte) (*WireSchema, error) {
	var s WireSchema
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("lint: parsing wire schema: %w", err)
	}
	return &s, nil
}

// TypeFields returns the named type's field list, shared with the schema
// (mutations are visible to a subsequent DiffWireSchemas — tests use this
// to simulate contract drift).
func (s *WireSchema) TypeFields(name string) []fieldSchema { return s.Types[name] }

func runWiretag(pass *Pass) error {
	if !IsWirePkg(pass.Pkg.Path()) {
		return nil
	}
	schema, typePos := computeWireSchema(pass.Fset, pass.Files, pass.TypesInfo)
	if len(schema.Types) == 0 {
		return nil
	}
	pkgPos := pass.Files[0].Package

	dir := filepath.Dir(pass.Fset.Position(pkgPos).Filename)
	goldenPath := filepath.Join(dir, WireSchemaFile)
	goldenData, err := os.ReadFile(goldenPath)
	if err != nil {
		pass.Reportf(pkgPos, "wire schema golden %s is unreadable (%v); run sessionlint -update-schema to create it", WireSchemaFile, err)
		return nil
	}
	var golden WireSchema
	if err := json.Unmarshal(goldenData, &golden); err != nil {
		pass.Reportf(pkgPos, "wire schema golden %s is not valid JSON (%v); run sessionlint -update-schema", WireSchemaFile, err)
		return nil
	}
	for _, d := range DiffWireSchemas(&golden, schema) {
		pos := pkgPos
		if p, ok := typePos[d.Type]; ok {
			pos = p
		}
		pass.Reportf(pos, "wire contract drift: %s; regenerate %s with sessionlint -update-schema and bump wire.Version if the v1 shape changed", d.Detail, WireSchemaFile)
	}
	return nil
}

// A SchemaDiff is one detected divergence between the committed and the
// computed wire schema, attributed to a type name.
type SchemaDiff struct {
	Type   string
	Detail string
}

// DiffWireSchemas compares the committed golden against the computed
// schema, returning one diff per diverging type (sorted by name).
func DiffWireSchemas(golden, computed *WireSchema) []SchemaDiff {
	var diffs []SchemaDiff
	if golden.V != computed.V {
		diffs = append(diffs, SchemaDiff{Detail: fmt.Sprintf("schema version %d in golden, computed %d", golden.V, computed.V)})
	}
	names := map[string]bool{}
	for n := range golden.Types {
		names[n] = true
	}
	for n := range computed.Types {
		names[n] = true
	}
	sorted := make([]string, 0, len(names))
	for n := range names {
		sorted = append(sorted, n)
	}
	sort.Strings(sorted)
	for _, n := range sorted {
		g, inGolden := golden.Types[n]
		c, inComputed := computed.Types[n]
		switch {
		case !inGolden:
			diffs = append(diffs, SchemaDiff{Type: n, Detail: fmt.Sprintf("envelope type %s is new (not in the committed schema)", n)})
		case !inComputed:
			diffs = append(diffs, SchemaDiff{Type: n, Detail: fmt.Sprintf("envelope type %s was removed (still in the committed schema)", n)})
		default:
			if d := diffFields(n, g, c); d != "" {
				diffs = append(diffs, SchemaDiff{Type: n, Detail: d})
			}
		}
	}
	return diffs
}

// diffFields pins the first field-level divergence of one type, comparing
// through a JSON round-trip so golden files and in-memory schemas agree on
// representation.
func diffFields(typeName string, golden, computed []fieldSchema) string {
	for i := 0; i < len(golden) && i < len(computed); i++ {
		g, c := golden[i], computed[i]
		switch {
		case g.Go != c.Go:
			return fmt.Sprintf("%s field %d renamed in Go: %s -> %s", typeName, i, g.Go, c.Go)
		case g.JSON != c.JSON:
			return fmt.Sprintf("%s.%s json tag changed: %q -> %q", typeName, c.Go, g.JSON, c.JSON)
		case !schemaEqual(g.Type, c.Type):
			return fmt.Sprintf("%s.%s type changed: %s -> %s", typeName, c.Go, renderSchema(g.Type), renderSchema(c.Type))
		}
	}
	if len(golden) < len(computed) {
		return fmt.Sprintf("%s gained field %s (%q)", typeName, computed[len(golden)].Go, computed[len(golden)].JSON)
	}
	if len(golden) > len(computed) {
		return fmt.Sprintf("%s lost field %s (%q)", typeName, golden[len(computed)].Go, golden[len(computed)].JSON)
	}
	return ""
}

func schemaEqual(a, b *typeSchema) bool {
	return reflect.DeepEqual(a, b)
}

// renderSchema flattens a type schema to a compact one-line form for
// diagnostics.
func renderSchema(t *typeSchema) string {
	switch {
	case t == nil:
		return "?"
	case t.Term != "":
		return t.Term
	case t.Ptr != nil:
		return "*" + renderSchema(t.Ptr)
	case t.Slice != nil:
		return "[]" + renderSchema(t.Slice)
	case t.Array != nil:
		return fmt.Sprintf("[%d]%s", t.ArrayN, renderSchema(t.Array))
	case t.Key != nil:
		return fmt.Sprintf("map[%s]%s", renderSchema(t.Key), renderSchema(t.Value))
	case t.Cycle != "":
		return "cycle:" + t.Cycle
	case t.Struct != "" || t.Fields != nil:
		parts := make([]string, 0, len(t.Fields))
		for _, f := range t.Fields {
			parts = append(parts, fmt.Sprintf("%s:%s", f.JSON, renderSchema(f.Type)))
		}
		name := t.Struct
		return name + "{" + strings.Join(parts, " ") + "}"
	}
	return "?"
}

// computeWireSchema builds the schema of every exported struct type
// declared in the package's non-test files, with the position of each
// declaration for diagnostics.
func computeWireSchema(fset *token.FileSet, files []*ast.File, info *types.Info) (*WireSchema, map[string]token.Pos) {
	schema := &WireSchema{V: 1, Types: map[string][]fieldSchema{}}
	typePos := map[string]token.Pos{}
	for _, f := range files {
		if strings.HasSuffix(fset.Position(f.Package).Filename, "_test.go") {
			continue
		}
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts := spec.(*ast.TypeSpec)
				if !ts.Name.IsExported() {
					continue
				}
				obj := info.Defs[ts.Name]
				if obj == nil {
					continue
				}
				st, ok := obj.Type().Underlying().(*types.Struct)
				if !ok {
					continue
				}
				seen := map[*types.TypeName]bool{}
				schema.Types[ts.Name.Name] = structFields(st, seen)
				typePos[ts.Name.Name] = ts.Pos()
			}
		}
	}
	return schema, typePos
}

// WireSchemaJSON renders the package's wire schema as the canonical golden
// file content (indented JSON, trailing newline). cmd/sessionlint's
// -update-schema writes exactly these bytes, so a regenerate-and-diff in CI
// is byte-stable.
func WireSchemaJSON(pkg *Package) ([]byte, error) {
	schema, _ := computeWireSchema(pkg.Fset, pkg.Files, pkg.Info)
	if len(schema.Types) == 0 {
		return nil, fmt.Errorf("lint: package %s declares no exported struct types to lock", pkg.Path)
	}
	data, err := json.MarshalIndent(schema, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// structFields renders a struct's JSON-visible fields in declaration
// order. Unexported fields and `json:"-"` fields are invisible on the wire
// and are skipped — tagging a field "-" therefore shows up as a removal,
// which is exactly what happened to the format.
func structFields(st *types.Struct, seen map[*types.TypeName]bool) []fieldSchema {
	fields := make([]fieldSchema, 0, st.NumFields())
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		tag := reflect.StructTag(st.Tag(i)).Get("json")
		if !f.Exported() {
			continue
		}
		name, opts, _ := strings.Cut(tag, ",")
		if name == "-" && opts == "" {
			continue
		}
		jsonKey := name
		if jsonKey == "" {
			if f.Embedded() && tag == "" {
				jsonKey = ",inline"
			} else {
				jsonKey = f.Name()
			}
		}
		if opts != "" {
			jsonKey += "," + opts
		}
		fields = append(fields, fieldSchema{
			Go:   f.Name(),
			JSON: jsonKey,
			Type: schemaOf(f.Type(), seen),
		})
	}
	if len(fields) == 0 {
		return nil // match the unmarshaled form of an absent "fields" key
	}
	return fields
}

// schemaOf renders one type's wire shape, expanding named structs from any
// package (that is what locks the facade types the envelopes embed) with a
// cycle guard.
func schemaOf(t types.Type, seen map[*types.TypeName]bool) *typeSchema {
	if named, ok := t.(*types.Named); ok {
		if _, isStruct := named.Underlying().(*types.Struct); isStruct {
			obj := named.Obj()
			if seen[obj] {
				return &typeSchema{Cycle: qualifiedTypeName(obj)}
			}
			seen[obj] = true
			defer delete(seen, obj)
			return &typeSchema{
				Struct: qualifiedTypeName(obj),
				Fields: structFields(named.Underlying().(*types.Struct), seen),
			}
		}
	}
	switch u := t.Underlying().(type) {
	case *types.Basic:
		return &typeSchema{Term: u.Name()}
	case *types.Pointer:
		return &typeSchema{Ptr: schemaOf(u.Elem(), seen)}
	case *types.Slice:
		return &typeSchema{Slice: schemaOf(u.Elem(), seen)}
	case *types.Array:
		return &typeSchema{Array: schemaOf(u.Elem(), seen), ArrayN: u.Len()}
	case *types.Map:
		return &typeSchema{Key: schemaOf(u.Key(), seen), Value: schemaOf(u.Elem(), seen)}
	case *types.Struct:
		return &typeSchema{Fields: structFields(u, seen)}
	case *types.Interface:
		return &typeSchema{Term: "any"}
	}
	return &typeSchema{Term: t.String()}
}

func qualifiedTypeName(obj *types.TypeName) string {
	if obj.Pkg() == nil {
		return obj.Name()
	}
	return obj.Pkg().Path() + "." + obj.Name()
}
