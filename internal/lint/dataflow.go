// Intra-procedural dataflow. The PR 4/5 performance work introduced
// invariants that are about where values *flow*, not what a single
// expression looks like: scratch-backed traces must not outlive their
// Execute call, and cached summaries must never alias scratch memory. A
// syntactic analyzer cannot see that `sum` three statements after a
// `core.RunSMScratch` call is (or is not) derived from the scratch-backed
// report, so this file adds the minimal dataflow layer the scratchalias and
// errcache analyzers need: per-function def/use chains with assignment,
// range, field-store and return tracking, run to a fixed point. It stays on
// go/ast + go/types only — same stdlib-only constraint as the loader — and
// deliberately stops at function boundaries: calls are modeled by explicit
// analyzer-supplied rules, never by inlining, so analysis cost stays linear
// in the function body.
package lint

import (
	"go/ast"
	"go/types"
)

// A funcDef is one analyzable function: a declared function or method. The
// body includes any nested function literals — they share the enclosing
// scope, so one flow analysis covers them, and def/use chains through
// captured variables just work.
type funcDef struct {
	decl *ast.FuncDecl
}

// collectFuncs returns every declared function with a body in the package.
func collectFuncs(files []*ast.File) []funcDef {
	var out []funcDef
	for _, f := range files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				out = append(out, funcDef{decl: fd})
			}
		}
	}
	return out
}

// taintRules parameterizes one taint pass over a function body.
type taintRules struct {
	// sourceExpr reports whether expr is a taint source by itself,
	// independent of its operands (e.g. a composite literal smuggling a
	// scratch pointer).
	sourceExpr func(expr ast.Expr) bool
	// taintedCall decides whether a call expression produces tainted data.
	// argTainted reports the taint of any expression (typically consulted
	// for the call's arguments or receiver); the default rules below are
	// applied first, so this only needs analyzer-specific call knowledge.
	taintedCall func(call *ast.CallExpr, argTainted func(ast.Expr) bool) bool
}

// A flow is the fixed-point result of one taint pass: the set of tainted
// local objects plus the expression query taintedExpr.
type flow struct {
	info  *types.Info
	rules taintRules
	objs  map[types.Object]bool
}

// analyzeFlow runs the taint analysis over body to a fixed point.
//
// Propagation is value-flow through the def/use chains: an assignment whose
// right-hand side is tainted taints its left-hand object; ranging over a
// tainted collection taints the iteration variables; storing a tainted
// value into a field or element of a *locally declared* aggregate taints
// the aggregate (the store is plumbing, not an escape — the escape is
// judged where the aggregate itself flows). Only reference-carrying types
// propagate: an int or string read out of a tainted struct copies the
// value, aliasing nothing.
func analyzeFlow(info *types.Info, body ast.Node, rules taintRules) *flow {
	fl := &flow{info: info, rules: rules, objs: make(map[types.Object]bool)}
	for changed := true; changed; {
		changed = false
		ast.Inspect(body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				changed = fl.applyAssign(n) || changed
			case *ast.ValueSpec:
				for i, name := range n.Names {
					if i < len(n.Values) && fl.taintedExpr(n.Values[i]) {
						changed = fl.taintObj(info.Defs[name]) || changed
					}
				}
			case *ast.RangeStmt:
				if fl.taintedExpr(n.X) {
					for _, e := range []ast.Expr{n.Key, n.Value} {
						if id, ok := e.(*ast.Ident); ok {
							obj := info.Defs[id]
							if obj == nil {
								obj = info.Uses[id]
							}
							changed = fl.taintObj(obj) || changed
						}
					}
				}
			}
			return true
		})
	}
	return fl
}

// applyAssign propagates taint across one assignment statement and reports
// whether anything new became tainted.
func (fl *flow) applyAssign(as *ast.AssignStmt) bool {
	changed := false
	// x, y := call() — one rhs fanning out to several lhs: the tuple's
	// taint taints every reference-carrying lhs.
	if len(as.Lhs) > 1 && len(as.Rhs) == 1 {
		if fl.taintedExpr(as.Rhs[0]) {
			for _, lhs := range as.Lhs {
				changed = fl.taintLHS(lhs) || changed
			}
		}
		return changed
	}
	for i, lhs := range as.Lhs {
		if i < len(as.Rhs) && fl.taintedExpr(as.Rhs[i]) {
			changed = fl.taintLHS(lhs) || changed
		}
	}
	return changed
}

// taintLHS taints the object behind one assignment target: the identifier
// itself for `x = ...`, the base object for a field or element store
// `x.F = ...` / `x[i] = ...` (the aggregate now holds tainted data).
func (fl *flow) taintLHS(lhs ast.Expr) bool {
	if id, ok := lhs.(*ast.Ident); ok {
		obj := fl.info.Defs[id]
		if obj == nil {
			obj = fl.info.Uses[id]
		}
		return fl.taintObj(obj)
	}
	return fl.taintObj(rootObject(fl.info, lhs))
}

// taintObj marks obj tainted if it carries references; reports change.
// Error values are exempt even though the error interface technically
// carries references: in `rep, err := run()` the tuple fan-out would
// otherwise taint err and flag the idiomatic `return nil, err` as an
// escape. Analyzers that care about error flow (errcache) track error
// objects separately.
func (fl *flow) taintObj(obj types.Object) bool {
	if obj == nil || fl.objs[obj] || !refCarrying(obj.Type()) || isErrorType(obj.Type()) {
		return false
	}
	fl.objs[obj] = true
	return true
}

// taintedExpr reports whether the value of expr may alias tainted data.
func (fl *flow) taintedExpr(expr ast.Expr) bool {
	if expr == nil {
		return false
	}
	if fl.rules.sourceExpr != nil && fl.rules.sourceExpr(expr) {
		return true
	}
	switch e := expr.(type) {
	case *ast.Ident:
		obj := fl.info.Uses[e]
		if obj == nil {
			obj = fl.info.Defs[e]
		}
		return obj != nil && fl.objs[obj]
	case *ast.ParenExpr:
		return fl.taintedExpr(e.X)
	case *ast.SelectorExpr:
		// A field read off a tainted value aliases it — but only if the
		// field itself carries references; scalars copy.
		if !fl.refResult(expr) {
			return false
		}
		return fl.taintedExpr(e.X)
	case *ast.IndexExpr:
		return fl.refResult(expr) && fl.taintedExpr(e.X)
	case *ast.SliceExpr:
		return fl.taintedExpr(e.X)
	case *ast.StarExpr:
		return fl.taintedExpr(e.X)
	case *ast.UnaryExpr:
		return fl.taintedExpr(e.X)
	case *ast.TypeAssertExpr:
		return fl.refResult(expr) && fl.taintedExpr(e.X)
	case *ast.CompositeLit:
		for _, elt := range e.Elts {
			v := elt
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				v = kv.Value
			}
			if fl.taintedExpr(v) {
				return true
			}
		}
		return false
	case *ast.CallExpr:
		return fl.taintedCall(e)
	}
	return false
}

// taintedCall applies the built-in call rules, then the analyzer's.
func (fl *flow) taintedCall(call *ast.CallExpr) bool {
	// Conversions pass taint through: []byte(x), T(x).
	if tv, ok := fl.info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		return fl.taintedExpr(call.Args[0])
	}
	// append(dst, src...) aliases both operands.
	if id, ok := call.Fun.(*ast.Ident); ok {
		if b, ok := fl.info.Uses[id].(*types.Builtin); ok {
			if b.Name() == "append" {
				for _, a := range call.Args {
					if fl.taintedExpr(a) {
						return true
					}
				}
			}
			return false
		}
	}
	// A method called on a tainted receiver returns data reaching into it
	// (rep.Steps(), sc.Arena.Alloc(...)) — when the result carries refs.
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if fl.info.Selections[sel] != nil && fl.refResult(call) && fl.taintedExpr(sel.X) {
			return true
		}
	}
	if fl.rules.taintedCall != nil {
		return fl.rules.taintedCall(call, fl.taintedExpr)
	}
	return false
}

// refResult reports whether expr's type carries references.
func (fl *flow) refResult(expr ast.Expr) bool {
	tv, ok := fl.info.Types[expr]
	if !ok || tv.Type == nil {
		return true // unresolvable: stay conservative
	}
	return refCarrying(tv.Type)
}

// refCarrying reports whether a value of type t can alias other memory:
// pointers, slices, maps, channels, funcs, interfaces, or aggregates
// containing any of them. Basic scalars (and strings, which are immutable)
// copy by value and cannot leak a scratch buffer.
func refCarrying(t types.Type) bool {
	return refCarryingSeen(t, make(map[types.Type]bool))
}

func refCarryingSeen(t types.Type, seen map[types.Type]bool) bool {
	if seen[t] {
		return false // recursive named type: already being judged
	}
	seen[t] = true
	switch u := t.Underlying().(type) {
	case *types.Basic:
		return false
	case *types.Pointer, *types.Slice, *types.Map, *types.Chan, *types.Signature, *types.Interface:
		return true
	case *types.Array:
		return refCarryingSeen(u.Elem(), seen)
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if refCarryingSeen(u.Field(i).Type(), seen) {
				return true
			}
		}
		return false
	case *types.Tuple:
		for i := 0; i < u.Len(); i++ {
			if refCarryingSeen(u.At(i).Type(), seen) {
				return true
			}
		}
		return false
	}
	return true
}

// namedType returns the qualified "pkgpath.Name" of expr's type, looking
// through one pointer, or "" when it has no named type.
func namedType(info *types.Info, expr ast.Expr) string {
	tv, ok := info.Types[expr]
	if !ok || tv.Type == nil {
		return ""
	}
	return qualifiedName(tv.Type)
}

// qualifiedName renders t's named type as "pkgpath.Name" through one
// pointer level, or "".
func qualifiedName(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	obj := n.Obj()
	if obj.Pkg() == nil {
		return obj.Name()
	}
	return obj.Pkg().Path() + "." + obj.Name()
}

// isRunCacherPut reports whether call is a Put on a run cache: a method
// named Put with signature (string, any) whose receiver's method set also
// offers Get(string) (any, bool) — the engine.RunCacher contract, matched
// structurally so the analyzers need no import of internal/engine and
// multi-tier implementations (internal/diskcache.Tiered) match too.
func isRunCacherPut(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Put" || len(call.Args) != 2 {
		return false
	}
	s := info.Selections[sel]
	if s == nil {
		return false
	}
	fn, ok := s.Obj().(*types.Func)
	if !ok || !putSignature(fn.Type().(*types.Signature)) {
		return false
	}
	// The receiver must look like a cache, not any Put(string, any): it
	// must also have Get(string) (any, bool).
	recv := s.Recv()
	obj, _, _ := types.LookupFieldOrMethod(recv, true, fn.Pkg(), "Get")
	get, ok := obj.(*types.Func)
	if !ok {
		return false
	}
	gsig := get.Type().(*types.Signature)
	return gsig.Params().Len() == 1 && isString(gsig.Params().At(0).Type()) &&
		gsig.Results().Len() == 2 && isEmptyInterface(gsig.Results().At(0).Type()) &&
		isBool(gsig.Results().At(1).Type())
}

func putSignature(sig *types.Signature) bool {
	return sig.Params().Len() == 2 &&
		isString(sig.Params().At(0).Type()) &&
		isEmptyInterface(sig.Params().At(1).Type()) &&
		sig.Results().Len() == 0
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Kind() == types.String
}

func isBool(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Kind() == types.Bool
}

func isEmptyInterface(t types.Type) bool {
	i, ok := t.Underlying().(*types.Interface)
	return ok && i.Empty()
}

// isErrorType reports whether t is the built-in error interface.
func isErrorType(t types.Type) bool {
	n, ok := t.(*types.Named)
	return ok && n.Obj().Pkg() == nil && n.Obj().Name() == "error"
}

// terminates reports whether a block's final statement leaves the enclosing
// flow: return, branch (break/continue/goto), panic, or a *.Fatal*/Exit
// call. Used to recognize `if err != nil { return ... }` guards.
func terminates(block *ast.BlockStmt) bool {
	if block == nil || len(block.List) == 0 {
		return false
	}
	switch s := block.List[len(block.List)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		call, ok := s.X.(*ast.CallExpr)
		if !ok {
			return false
		}
		switch fun := call.Fun.(type) {
		case *ast.Ident:
			return fun.Name == "panic"
		case *ast.SelectorExpr:
			name := fun.Sel.Name
			return name == "Fatal" || name == "Fatalf" || name == "Exit"
		}
	}
	return false
}

// nilCheck classifies an if condition as a nil comparison against the
// object of an error-typed identifier: returns the object and true for
// `err != nil`, false for `err == nil`, or nil when it is neither.
func nilCheck(info *types.Info, cond ast.Expr) (obj types.Object, isNotNil bool) {
	be, ok := cond.(*ast.BinaryExpr)
	if !ok {
		return nil, false
	}
	var idExpr ast.Expr
	switch {
	case isNilIdent(info, be.Y):
		idExpr = be.X
	case isNilIdent(info, be.X):
		idExpr = be.Y
	default:
		return nil, false
	}
	id, ok := idExpr.(*ast.Ident)
	if !ok {
		return nil, false
	}
	o := info.Uses[id]
	if o == nil || !isErrorType(o.Type()) {
		return nil, false
	}
	switch be.Op.String() {
	case "!=":
		return o, true
	case "==":
		return o, false
	}
	return nil, false
}

func isNilIdent(info *types.Info, e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	if !ok {
		return false
	}
	_, isNil := info.Uses[id].(*types.Nil)
	return isNil
}
