package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"
)

// Panicmsg enforces the internal packages' panic convention (established in
// bounds, stats and sim): a panic carries a constant string prefixed with
// the package name, "pkg: message", so a stack-trace-free report still says
// which invariant broke and where. Accepted forms are a constant string, a
// fmt.Sprintf whose format string is such a constant, and a string
// concatenation whose leftmost operand is such a constant.
var Panicmsg = &Analyzer{
	Name: "panicmsg",
	Doc:  `panics in internal packages must carry a "pkg: message"-prefixed constant string`,
	Run:  runPanicmsg,
}

func runPanicmsg(pass *Pass) error {
	if !strings.Contains(pass.Pkg.Path(), "/internal/") {
		return nil
	}
	prefix := pass.Pkg.Name() + ": "
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) != 1 {
				return true
			}
			id, ok := call.Fun.(*ast.Ident)
			if !ok {
				return true
			}
			if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); !ok || b.Name() != "panic" {
				return true
			}
			if !panicMsgOK(pass.TypesInfo, call.Args[0], prefix) {
				pass.Reportf(call.Pos(), "panic message must be a constant string prefixed %q (got %s)", prefix, typeOf(pass.TypesInfo, call.Args[0]))
			}
			return true
		})
	}
	return nil
}

// panicMsgOK reports whether arg is one of the accepted panic-message
// forms for the given "pkg: " prefix.
func panicMsgOK(info *types.Info, arg ast.Expr, prefix string) bool {
	if hasConstPrefix(info, arg, prefix) {
		return true
	}
	switch e := arg.(type) {
	case *ast.CallExpr:
		// fmt.Sprintf("pkg: ...", args...) and fmt.Errorf alike.
		if pkgPath, name := pkgFunc(info, e.Fun); pkgPath == "fmt" && (name == "Sprintf" || name == "Errorf") && len(e.Args) > 0 {
			return hasConstPrefix(info, e.Args[0], prefix)
		}
	case *ast.BinaryExpr:
		// "pkg: ...: " + err.Error() — check the leftmost operand.
		if e.Op == token.ADD {
			left := ast.Expr(e)
			for {
				b, ok := left.(*ast.BinaryExpr)
				if !ok {
					break
				}
				left = b.X
			}
			return hasConstPrefix(info, left, prefix)
		}
	}
	return false
}

// hasConstPrefix reports whether expr is a compile-time string constant
// starting with prefix.
func hasConstPrefix(info *types.Info, expr ast.Expr, prefix string) bool {
	tv, ok := info.Types[expr]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return false
	}
	return strings.HasPrefix(constant.StringVal(tv.Value), prefix)
}

// typeOf renders expr's type for the diagnostic, or "non-constant
// expression" when unknown.
func typeOf(info *types.Info, expr ast.Expr) string {
	if tv, ok := info.Types[expr]; ok && tv.Type != nil {
		if tv.Value != nil {
			return "constant without the prefix"
		}
		return "non-constant " + tv.Type.String()
	}
	return "non-constant expression"
}
