// Package lint is a self-contained static-analysis framework plus the five
// project-specific analyzers that machine-enforce this repository's
// determinism and admissibility conventions:
//
//   - nodeterm: no wall-clock, global randomness or environment reads inside
//     the deterministic simulator packages;
//   - maprange: map iteration order must not escape into output;
//   - ctxpoll: potentially unbounded loops in context-aware functions must
//     poll their context (the executors' 1024-step contract);
//   - facadeonly: examples import the public sessionproblem facade, never
//     sessionproblem/internal/... (a short exemption list excepted);
//   - panicmsg: panics in internal packages carry a "pkg: message"-prefixed
//     constant string;
//   - scratchalias: scratch-backed run data (the PR 4 executor ownership
//     contract) must not escape its Execute call into fields, globals,
//     channels, caches or past-the-boundary returns;
//   - errcache: RunCacher.Put must be guarded by an error check — errors
//     are never cached;
//   - wiretag: the wire v1 envelope JSON schema must match the committed
//     wire/schema_v1.json golden.
//
// The last three are dataflow analyzers: they run on per-function def/use
// chains (dataflow.go) instead of single-expression syntax, so they can
// follow a value from the call that produced it to the store that leaks it.
//
// The framework mirrors the shape of golang.org/x/tools/go/analysis but is
// built entirely on the standard library (go/ast, go/types, go/importer and
// the go command), because this module takes no external dependencies.
// cmd/sessionlint drives the analyzers either standalone or as a
// `go vet -vettool` backend.
//
// A diagnostic can be waived with a directive comment:
//
//	//lint:allow nodeterm reason...
//
// placed either at the end of the offending line or alone on the line
// directly above it. Several analyzer names may be listed, separated by
// commas.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one checked rule.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in //lint:allow
	// directives.
	Name string
	// Doc is a one-paragraph description of the rule.
	Doc string
	// Run applies the rule to a single type-checked package, reporting
	// violations through the pass.
	Run func(*Pass) error
}

// Analyzers returns the full suite in a fixed order.
func Analyzers() []*Analyzer {
	return []*Analyzer{Nodeterm, Maprange, Ctxpoll, Facadeonly, Panicmsg, Scratchalias, Errcache, Wiretag}
}

// A Diagnostic is one reported violation.
type Diagnostic struct {
	// Analyzer is the name of the rule that fired.
	Analyzer string
	// Pos locates the violation.
	Pos token.Position
	// Message describes it.
	Message string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s (%s)", d.Pos, d.Message, d.Analyzer)
}

// A Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer *Analyzer
	// Fset maps positions; Files are the package's parsed sources (with
	// comments); Pkg and TypesInfo are the type-checker's output.
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	directives directiveIndex
	report     func(Diagnostic)
}

// Reportf records a violation at pos unless a //lint:allow directive for
// this analyzer covers the line.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	if p.directives.allows(position.Filename, position.Line, p.Analyzer.Name) {
		return
	}
	p.report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      position,
		Message:  fmt.Sprintf(format, args...),
	})
}

// directiveIndex records, per file and line, which analyzers are waived.
type directiveIndex map[string]map[int]map[string]bool

func (ix directiveIndex) allows(file string, line int, analyzer string) bool {
	return ix[file][line][analyzer]
}

const directivePrefix = "//lint:allow "

// buildDirectives scans every comment for //lint:allow directives. A
// directive covers its own line and the next one, so it works both trailing
// the offending statement and standing alone directly above it.
func buildDirectives(fset *token.FileSet, files []*ast.File) directiveIndex {
	ix := make(directiveIndex)
	add := func(file string, line int, name string) {
		if ix[file] == nil {
			ix[file] = make(map[int]map[string]bool)
		}
		if ix[file][line] == nil {
			ix[file][line] = make(map[string]bool)
		}
		ix[file][line][name] = true
	}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, directivePrefix) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, directivePrefix)
				names, _, _ := strings.Cut(rest, " ")
				pos := fset.Position(c.Pos())
				for _, name := range strings.Split(names, ",") {
					name = strings.TrimSpace(name)
					if name == "" {
						continue
					}
					add(pos.Filename, pos.Line, name)
					add(pos.Filename, pos.Line+1, name)
				}
			}
		}
	}
	return ix
}

// Check runs the analyzers over one type-checked package and returns the
// surviving diagnostics sorted by position.
func Check(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, analyzers []*Analyzer) ([]Diagnostic, error) {
	directives := buildDirectives(fset, files)
	var out []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:   a,
			Fset:       fset,
			Files:      files,
			Pkg:        pkg,
			TypesInfo:  info,
			directives: directives,
			report:     func(d Diagnostic) { out = append(out, d) },
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("lint: analyzer %s on %s: %w", a.Name, pkg.Path(), err)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return out, nil
}

// NewInfo returns a types.Info with every map the analyzers consult.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}

// pkgFunc resolves a qualified identifier pkg.Sel to the imported package
// path and selector name, or returns "" when expr is not one.
func pkgFunc(info *types.Info, expr ast.Expr) (pkgPath, name string) {
	sel, ok := expr.(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", ""
	}
	pn, ok := info.Uses[id].(*types.PkgName)
	if !ok {
		return "", ""
	}
	return pn.Imported().Path(), sel.Sel.Name
}
