package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Maprange flags `for range` loops over maps whose iteration order can
// escape into observable output. Go randomizes map iteration order, so a
// map-ordered append, print, channel send or string build makes results
// differ run to run — exactly the nondeterminism the simulator's
// byte-identical-output guarantee forbids. Appending keys in order to sort
// them afterwards is the sanctioned fix and is recognized: an append whose
// target is later passed to a sort.* or slices.* call is not reported.
var Maprange = &Analyzer{
	Name: "maprange",
	Doc:  "flag map iterations whose nondeterministic order escapes into output",
	Run:  runMaprange,
}

func runMaprange(pass *Pass) error {
	for _, f := range pass.Files {
		// funcStack tracks enclosing function bodies so an escape can be
		// checked for a downstream sort in the same function.
		var funcStack []*ast.BlockStmt
		var walk func(n ast.Node) bool
		walk = func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body == nil {
					return false
				}
				funcStack = append(funcStack, n.Body)
				ast.Inspect(n.Body, walk)
				funcStack = funcStack[:len(funcStack)-1]
				return false
			case *ast.FuncLit:
				funcStack = append(funcStack, n.Body)
				ast.Inspect(n.Body, walk)
				funcStack = funcStack[:len(funcStack)-1]
				return false
			case *ast.RangeStmt:
				tv, ok := pass.TypesInfo.Types[n.X]
				if !ok {
					return true
				}
				if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
					return true
				}
				var encl *ast.BlockStmt
				if len(funcStack) > 0 {
					encl = funcStack[len(funcStack)-1]
				}
				checkMapRange(pass, n, encl)
			}
			return true
		}
		ast.Inspect(f, walk)
	}
	return nil
}

// checkMapRange reports order escapes from one map-range loop.
func checkMapRange(pass *Pass, rng *ast.RangeStmt, encl *ast.BlockStmt) {
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SendStmt:
			pass.Reportf(n.Pos(), "channel send inside map iteration leaks nondeterministic order; collect and sort keys first")
		case *ast.AssignStmt:
			if n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 {
				if obj := rootObject(pass.TypesInfo, n.Lhs[0]); obj != nil && declaredOutside(obj, rng) && isStringType(obj.Type()) {
					pass.Reportf(n.Pos(), "string built in map iteration order; collect and sort keys first")
				}
			}
		case *ast.CallExpr:
			checkMapRangeCall(pass, n, rng, encl)
		}
		return true
	})
}

// checkMapRangeCall reports a single call expression inside a map-range
// body when it lets the iteration order escape.
func checkMapRangeCall(pass *Pass, call *ast.CallExpr, rng *ast.RangeStmt, encl *ast.BlockStmt) {
	// Print-family calls emit in iteration order.
	if pkgPath, _ := pkgFunc(pass.TypesInfo, call.Fun); pkgPath == "fmt" {
		pass.Reportf(call.Pos(), "fmt call inside map iteration emits nondeterministic order; collect and sort keys first")
		return
	}
	// Appends to a variable from outside the loop build an order-dependent
	// slice — unless that slice is sorted afterwards.
	if id, ok := call.Fun.(*ast.Ident); ok && len(call.Args) > 0 {
		if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); ok && b.Name() == "append" {
			obj := rootObject(pass.TypesInfo, call.Args[0])
			if obj != nil && declaredOutside(obj, rng) && !sortedAfter(pass, encl, rng, obj) {
				pass.Reportf(call.Pos(), "append to %s in map iteration order with no later sort; sort it before it escapes", obj.Name())
			}
			return
		}
	}
	// Builder/buffer writes emit in iteration order.
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		switch sel.Sel.Name {
		case "WriteString", "WriteByte", "WriteRune", "Write":
			if obj := rootObject(pass.TypesInfo, sel.X); obj != nil && declaredOutside(obj, rng) && isBuilderType(obj.Type()) {
				pass.Reportf(call.Pos(), "%s.%s inside map iteration builds nondeterministic output; collect and sort keys first", obj.Name(), sel.Sel.Name)
			}
		}
	}
}

// rootObject resolves expr to the object of its base identifier (x, x.f,
// x[i], &x, *x all resolve to x).
func rootObject(info *types.Info, expr ast.Expr) types.Object {
	for {
		switch e := expr.(type) {
		case *ast.Ident:
			return info.Uses[e]
		case *ast.SelectorExpr:
			expr = e.X
		case *ast.IndexExpr:
			expr = e.X
		case *ast.StarExpr:
			expr = e.X
		case *ast.UnaryExpr:
			expr = e.X
		case *ast.ParenExpr:
			expr = e.X
		default:
			return nil
		}
	}
}

// declaredOutside reports whether obj's declaration is outside the range
// statement, i.e. the value survives the loop.
func declaredOutside(obj types.Object, rng *ast.RangeStmt) bool {
	return obj.Pos() < rng.Pos() || obj.Pos() >= rng.End()
}

// sortedAfter reports whether obj is passed to a sort.* or slices.* call
// after the loop, inside the enclosing function body.
func sortedAfter(pass *Pass, encl *ast.BlockStmt, rng *ast.RangeStmt, obj types.Object) bool {
	if encl == nil {
		return false
	}
	found := false
	ast.Inspect(encl, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() || found {
			return !found
		}
		pkgPath, _ := pkgFunc(pass.TypesInfo, call.Fun)
		if pkgPath != "sort" && pkgPath != "slices" {
			return true
		}
		for _, arg := range call.Args {
			if rootObject(pass.TypesInfo, arg) == obj {
				found = true
			}
		}
		return !found
	})
	return found
}

func isStringType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// isBuilderType matches strings.Builder and bytes.Buffer (possibly behind a
// pointer).
func isBuilderType(t types.Type) bool {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	if obj.Pkg() == nil {
		return false
	}
	switch obj.Pkg().Path() + "." + obj.Name() {
	case "strings.Builder", "bytes.Buffer":
		return true
	}
	return false
}
