package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/parser"
	"go/token"
	"io"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// An Allow is one //lint:allow waiver found in the tree: the file and line
// carrying the directive, the analyzer it silences, and the justification
// text the author wrote after the analyzer name. The inventory exists so
// reviews and CI can audit the complete set of exceptions to the lint
// contract instead of discovering them one grep at a time.
type Allow struct {
	File      string   `json:"file"`
	Line      int      `json:"line"`
	Analyzers []string `json:"analyzers"`
	Reason    string   `json:"reason"`
}

// CollectAllows scans every Go source file (including test files) of the
// packages matched by patterns for //lint:allow directives and returns them
// sorted by file and line. dir is the directory the patterns are
// interpreted in; it may be empty for the current directory. The scan is
// parse-only — no type checking — so it works even while the tree does not
// build.
func CollectAllows(dir string, patterns ...string) ([]Allow, error) {
	pkgs, err := goListFiles(dir, patterns)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	var out []Allow
	seen := map[string]bool{}
	for _, p := range pkgs {
		names := make([]string, 0, len(p.GoFiles)+len(p.TestGoFiles)+len(p.XTestGoFiles))
		names = append(names, p.GoFiles...)
		names = append(names, p.TestGoFiles...)
		names = append(names, p.XTestGoFiles...)
		for _, name := range names {
			if !filepath.IsAbs(name) {
				name = filepath.Join(p.Dir, name)
			}
			if seen[name] {
				continue
			}
			seen[name] = true
			allows, err := fileAllows(fset, name)
			if err != nil {
				return nil, err
			}
			out = append(out, allows...)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].File != out[j].File {
			return out[i].File < out[j].File
		}
		return out[i].Line < out[j].Line
	})
	return out, nil
}

// fileAllows parses one file for comments only and extracts its directives.
func fileAllows(fset *token.FileSet, filename string) ([]Allow, error) {
	f, err := parser.ParseFile(fset, filename, nil, parser.ParseComments)
	if err != nil {
		return nil, fmt.Errorf("lint: %w", err)
	}
	var out []Allow
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if !strings.HasPrefix(c.Text, directivePrefix) {
				continue
			}
			rest := strings.TrimPrefix(c.Text, directivePrefix)
			names, reason, _ := strings.Cut(rest, " ")
			var analyzers []string
			for _, name := range strings.Split(names, ",") {
				if name = strings.TrimSpace(name); name != "" {
					analyzers = append(analyzers, name)
				}
			}
			pos := fset.Position(c.Pos())
			out = append(out, Allow{
				File:      pos.Filename,
				Line:      pos.Line,
				Analyzers: analyzers,
				Reason:    strings.TrimSpace(reason),
			})
		}
	}
	return out, nil
}

// listedFiles is the go list output subset the allow scanner needs: source
// file names of the package proper, its in-package tests and its external
// test package.
type listedFiles struct {
	Dir          string
	GoFiles      []string
	TestGoFiles  []string
	XTestGoFiles []string
}

// goListFiles resolves patterns to source file lists without building
// anything (no -deps, no -export — the scanner never type-checks).
func goListFiles(dir string, patterns []string) ([]listedFiles, error) {
	args := append([]string{"list", "-json=Dir,GoFiles,TestGoFiles,XTestGoFiles"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("lint: go list %v: %v\n%s", patterns, err, stderr.Bytes())
	}
	var out []listedFiles
	dec := json.NewDecoder(&stdout)
	for {
		var p listedFiles
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: decoding go list output: %w", err)
		}
		out = append(out, p)
	}
	return out, nil
}
