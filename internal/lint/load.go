package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// A Package is one loaded, parsed and type-checked package ready for
// analysis.
type Package struct {
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// listedPackage is the subset of `go list -json` output the loader needs.
type listedPackage struct {
	ImportPath string
	Dir        string
	Export     string
	ForTest    string
	GoFiles    []string
	CgoFiles   []string
	Standard   bool
	DepOnly    bool
	Incomplete bool
	Error      *struct{ Err string }
}

// Load resolves patterns with the go command and returns the matched
// packages, parsed from source and type-checked against the build cache's
// export data. dir is the directory the patterns are interpreted in (the
// module root, typically); it may be empty for the current directory.
// Test files are not loaded; LoadTests includes them.
func Load(dir string, patterns ...string) ([]*Package, error) {
	return LoadTests(dir, false, patterns...)
}

// LoadTests is Load with optional test coverage: when tests is true, each
// package with in-package test files is loaded as its test variant
// (regular plus _test.go sources type-checked together, the way the go
// command compiles "pkg [pkg.test]"), and external "pkg_test" test
// packages are loaded as packages of their own, their import of the
// package under test resolved to the test-variant export data. The
// determinism invariants hold in test helpers exactly as in shipped code,
// so the default surface for cmd/sessionlint is tests on.
func LoadTests(dir string, tests bool, patterns ...string) ([]*Package, error) {
	listed, err := goList(dir, tests, patterns)
	if err != nil {
		return nil, err
	}

	exports := make(map[string]string, len(listed))
	for _, p := range listed {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}

	// A package with in-package test files appears twice: plain and as the
	// merged test variant "P [P.test]". The variant strictly supersets the
	// plain files, so analyze only it.
	hasTestVariant := make(map[string]bool)
	for _, p := range listed {
		if p.ForTest != "" && strings.HasPrefix(p.ImportPath, p.ForTest+" [") {
			hasTestVariant[p.ForTest] = true
		}
	}

	fset := token.NewFileSet()
	sharedImp := exportImporter(fset, exports)

	var out []*Package
	for _, p := range listed {
		if p.DepOnly || p.Standard || p.ImportPath == "unsafe" {
			continue
		}
		if strings.HasSuffix(p.ImportPath, ".test") {
			continue // synthetic test-main package (generated _testmain.go)
		}
		if p.ForTest == "" && hasTestVariant[p.ImportPath] {
			continue // superseded by the merged test variant
		}
		if p.Error != nil {
			return nil, fmt.Errorf("lint: %s: %s", p.ImportPath, p.Error.Err)
		}
		if len(p.CgoFiles) > 0 {
			return nil, fmt.Errorf("lint: %s uses cgo, which this loader does not support", p.ImportPath)
		}
		var files []*ast.File
		for _, name := range p.GoFiles {
			if !filepath.IsAbs(name) {
				name = filepath.Join(p.Dir, name)
			}
			f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
			if err != nil {
				return nil, fmt.Errorf("lint: %w", err)
			}
			files = append(files, f)
		}
		imp := sharedImp
		if p.ForTest != "" {
			// Deps of a test package may themselves be test variants (the
			// under-test package with its test-only exports); resolve an
			// import to the bracketed variant when one was compiled.
			imp = testVariantImporter(fset, exports, p.ForTest)
		}
		checkPath := BasePkgPath(p.ImportPath)
		info := NewInfo()
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(checkPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("lint: typecheck %s: %w", p.ImportPath, err)
		}
		out = append(out, &Package{
			Path:  checkPath,
			Fset:  fset,
			Files: files,
			Types: tpkg,
			Info:  info,
		})
	}
	return out, nil
}

// goList runs `go list -deps -export -json` over the patterns. -deps and
// -export make the go command emit (building them if necessary) the export
// data files every dependency's type information is read from; -test adds
// the merged in-package test variants and the external test packages.
func goList(dir string, tests bool, patterns []string) ([]listedPackage, error) {
	args := []string{
		"list", "-deps", "-export",
		"-json=ImportPath,Dir,Export,ForTest,GoFiles,CgoFiles,Standard,DepOnly,Incomplete,Error",
	}
	if tests {
		args = append(args, "-test")
	}
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("lint: go list %v: %v\n%s", patterns, err, stderr.Bytes())
	}
	var out []listedPackage
	dec := json.NewDecoder(&stdout)
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: decoding go list output: %w", err)
		}
		out = append(out, p)
	}
	return out, nil
}

// exportImporter resolves imports from compiler export data files, the same
// way the compiler itself resolves them during a build.
func exportImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q (run go build first?)", path)
		}
		return os.Open(file)
	})
}

// testVariantImporter resolves imports for a test package of forTest: an
// imported path compiled specially for this test binary ("P [forTest.test]"
// — the package under test with its test-file exports) wins over the plain
// build. A fresh importer per test package keeps its type cache from
// leaking variant types into plain packages sharing the load.
func testVariantImporter(fset *token.FileSet, exports map[string]string, forTest string) types.Importer {
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		if file, ok := exports[path+" ["+forTest+".test]"]; ok {
			return os.Open(file)
		}
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q (run go build first?)", path)
		}
		return os.Open(file)
	})
}

// LoadFiles parses the named files as one package and type-checks them under
// the given import path, resolving their imports through `go list -export`
// run in dir. It is the test fixtures' loader: the import path is chosen by
// the caller, so fixtures can impersonate any package the analyzers'
// path predicates single out.
func LoadFiles(dir, pkgPath string, filenames ...string) (*Package, error) {
	fset := token.NewFileSet()
	var files []*ast.File
	importSet := map[string]bool{}
	for _, name := range filenames {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		files = append(files, f)
		for _, spec := range f.Imports {
			p := spec.Path.Value
			importSet[p[1:len(p)-1]] = true
		}
	}
	var imports []string
	for p := range importSet {
		if p != "unsafe" {
			imports = append(imports, p)
		}
	}
	sort.Strings(imports)

	exports := make(map[string]string)
	if len(imports) > 0 {
		listed, err := goList(dir, false, imports)
		if err != nil {
			return nil, err
		}
		for _, p := range listed {
			if p.Export != "" {
				exports[p.ImportPath] = p.Export
			}
		}
	}

	info := NewInfo()
	conf := types.Config{Importer: exportImporter(fset, exports)}
	tpkg, err := conf.Check(pkgPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: typecheck %s: %w", pkgPath, err)
	}
	return &Package{Path: pkgPath, Fset: fset, Files: files, Types: tpkg, Info: info}, nil
}
