// Package bounds encodes every cell of the paper's Table 1 as a closed-form
// function of the system parameters, with integer-exact floors and
// logarithms. The harness compares these predictions against measured
// running times.
//
// Table 1 notation: s sessions, n ports, b the shared-variable access bound,
// [c1, c2] step-time bounds, [cmin, cmax] the periodic model's per-process
// period range, [d1, d2] message-delay bounds, u = d2 - d1, and γ the
// largest step time actually taken in a given computation.
//
// The two O(log_b n) upper-bound cells (periodic SM and the communication
// branch of semi-synchronous SM) depend on the concrete communication
// substrate; CommSteps supplies the step count of this repository's relay
// tree (internal/tree), making those cells concrete and checkable.
package bounds

import (
	"sessionproblem/internal/sim"
)

// Params bundles every parameter appearing in Table 1.
type Params struct {
	S int // number of sessions required
	N int // number of ports
	B int // shared-variable access bound

	C1, C2     sim.Duration // semi-synchronous step bounds (c1 > 0)
	Cmin, Cmax sim.Duration // periodic per-process period range
	D1, D2     sim.Duration // message delay bounds

	// Gamma is the per-computation largest step time, used by the sporadic
	// upper bound (the sporadic model has no a-priori c2).
	Gamma sim.Duration
}

// U returns the delay uncertainty d2 - d1.
func (p Params) U() sim.Duration { return p.D2 - p.D1 }

// FloorLog returns floor(log_base(x)): the largest k with base^k <= x.
// It returns 0 for x < base and panics for base < 2 or x < 1.
func FloorLog(base, x int) int {
	if base < 2 {
		panic("bounds: FloorLog base must be >= 2")
	}
	if x < 1 {
		panic("bounds: FloorLog x must be >= 1")
	}
	k := 0
	pow := 1
	for pow <= x/base {
		pow *= base
		k++
	}
	// pow*base may still be <= x when x/base truncates; check directly.
	for overflowSafeMul(pow, base) <= x {
		pow *= base
		k++
	}
	return k
}

func overflowSafeMul(a, b int) int {
	const maxInt = int(^uint(0) >> 1)
	if a != 0 && b > maxInt/a {
		return maxInt
	}
	return a * b
}

// TreeArity returns the branching factor used by internal/tree for access
// bound b: max(b-1, 2).
func TreeArity(b int) int {
	if b-1 < 2 {
		return 2
	}
	return b - 1
}

// TreeDepth returns the number of relay levels internal/tree builds for n
// ports at access bound b.
func TreeDepth(n, b int) int {
	arity := TreeArity(b)
	depth := 1
	level := (n + arity - 1) / arity
	for level > 1 {
		level = (level + arity - 1) / arity
		depth++
	}
	return depth
}

// CommSteps bounds the number of step-times needed for a value announced at
// one port to reach every port through this repository's relay tree: the
// announcement must climb Depth levels and descend Depth levels, and at each
// level waits at most one full relay sweep of (arity+1) variables, plus one
// port step at each end. This is the concrete constant behind the paper's
// O(log_b n) communication cost.
func CommSteps(n, b int) int {
	return 2*TreeDepth(n, b)*(TreeArity(b)+2) + 2
}

// --- Shared memory ---------------------------------------------------------

// SyncSM returns the synchronous shared-memory bounds: L = U = s*c2 [2].
func SyncSM(p Params) (lower, upper float64) {
	v := float64(p.S) * float64(p.C2)
	return v, v
}

// PeriodicSML returns the periodic SM lower bound:
// max{s*cmax, floor(log_{2b-1}(2n-1)) * cmin} (Theorem 4.3).
func PeriodicSML(p Params) float64 {
	a := float64(p.S) * float64(p.Cmax)
	c := float64(FloorLog(2*p.B-1, 2*p.N-1)) * float64(p.Cmin)
	if a > c {
		return a
	}
	return c
}

// PeriodicSMU returns the periodic SM upper bound:
// s*cmax + O(log_b n)*cmax (Theorem 4.1), with the O(log_b n) factor made
// concrete by CommSteps.
func PeriodicSMU(p Params) float64 {
	return float64(p.S)*float64(p.Cmax) + float64(CommSteps(p.N, p.B))*float64(p.Cmax)
}

// SemiSyncSML returns the semi-synchronous SM lower bound:
// min{floor(c2/2c1)*c2, floor(log_b n)*c2} * (s-1) (Theorem 5.1).
func SemiSyncSML(p Params) float64 {
	a := float64(p.C2/(2*p.C1)) * float64(p.C2)
	c := float64(FloorLog(p.B, p.N)) * float64(p.C2)
	if c < a {
		a = c
	}
	return a * float64(p.S-1)
}

// SemiSyncSMU returns the semi-synchronous SM upper bound:
// min{(floor(c2/c1)+1)*c2, O(log_b n)*c2} * (s-1) + c2,
// with CommSteps as the concrete communication factor.
func SemiSyncSMU(p Params) float64 {
	a := float64(p.C2/p.C1+1) * float64(p.C2)
	c := float64(CommSteps(p.N, p.B)) * float64(p.C2)
	if c < a {
		a = c
	}
	return a*float64(p.S-1) + float64(p.C2)
}

// AsyncSML returns the asynchronous SM lower bound in rounds:
// (s-1) * floor(log_b n) [2].
func AsyncSML(p Params) float64 {
	return float64(p.S-1) * float64(FloorLog(p.B, p.N))
}

// AsyncSMU returns the asynchronous SM upper bound in rounds:
// (s-1) * O(log_b n) [2], concretely (s-1)*CommRounds + CommRounds where
// CommRounds is the per-synchronization round cost of the relay tree.
func AsyncSMU(p Params) float64 {
	return float64(p.S)*float64(CommSteps(p.N, p.B)) + 2
}

// SporadicSML returns the sporadic SM lower bound, which the paper equates
// with the asynchronous SM bound (rounds).
func SporadicSML(p Params) float64 { return AsyncSML(p) }

// SporadicSMU returns the sporadic SM upper bound, equal to the
// asynchronous SM bound (rounds).
func SporadicSMU(p Params) float64 { return AsyncSMU(p) }

// --- Message passing -------------------------------------------------------

// SyncMP returns the synchronous message-passing bounds: L = U = s*c2.
func SyncMP(p Params) (lower, upper float64) {
	v := float64(p.S) * float64(p.C2)
	return v, v
}

// PeriodicMPL returns the periodic MP lower bound: max{s*cmax, d2}
// (Theorem 4.2).
func PeriodicMPL(p Params) float64 {
	a := float64(p.S) * float64(p.Cmax)
	if d := float64(p.D2); d > a {
		return d
	}
	return a
}

// PeriodicMPU returns the periodic MP upper bound: s*cmax + d2
// (Theorem 4.1).
func PeriodicMPU(p Params) float64 {
	return float64(p.S)*float64(p.Cmax) + float64(p.D2)
}

// SemiSyncMPL returns the semi-synchronous MP lower bound:
// min{floor(c2/2c1)*c2, d2+c2} * (s-1) [4].
func SemiSyncMPL(p Params) float64 {
	a := float64(p.C2/(2*p.C1)) * float64(p.C2)
	if c := float64(p.D2) + float64(p.C2); c < a {
		a = c
	}
	return a * float64(p.S-1)
}

// SemiSyncMPU returns the semi-synchronous MP upper bound:
// min{(floor(c2/c1)+1)*c2, d2+c2} * (s-1) + c2 [4].
func SemiSyncMPU(p Params) float64 {
	a := float64(p.C2/p.C1+1) * float64(p.C2)
	if c := float64(p.D2) + float64(p.C2); c < a {
		a = c
	}
	return a*float64(p.S-1) + float64(p.C2)
}

// SporadicK returns K = 2*d2*c1 / (d2 - u/2) from Theorem 6.5.
func SporadicK(p Params) float64 {
	den := float64(p.D2) - float64(p.U())/2
	if den <= 0 {
		return 0
	}
	return 2 * float64(p.D2) * float64(p.C1) / den
}

// SporadicMPL returns the sporadic MP lower bound:
// max{floor(u/4c1)*K, c1} * (s-1) (Theorem 6.5).
func SporadicMPL(p Params) float64 {
	a := float64(p.U()/(4*p.C1)) * SporadicK(p)
	if c := float64(p.C1); c > a {
		a = c
	}
	return a * float64(p.S-1)
}

// SporadicMPU returns the sporadic MP upper bound as stated in Theorem 6.1:
//
//	min{(floor(u/c1)+1)*γ + (u+2γ), d2+γ} * (s-2) + d2 + 2γ.
//
// Table 1 prints the converted form min{(floor(u/c1)+3)γ+u, d2+γ}(s-1)+γ,
// but the paper notes that conversion is valid only when
// d1 < (floor(u/c1)+1)γ; this function uses the unconditional statement.
func SporadicMPU(p Params) float64 {
	g := float64(p.Gamma)
	perSession := float64(p.U()/p.C1+1)*g + float64(p.U()) + 2*g
	if c := float64(p.D2) + g; c < perSession {
		perSession = c
	}
	tail := float64(p.S - 2)
	if tail < 0 {
		tail = 0
	}
	return perSession*tail + float64(p.D2) + 2*g
}

// AsyncMPL returns the asynchronous MP lower bound: (s-1)*d2 [4].
func AsyncMPL(p Params) float64 {
	return float64(p.S-1) * float64(p.D2)
}

// AsyncMPU returns the asynchronous MP upper bound:
// (s-1)*(d2+c2) + c2 [4].
func AsyncMPU(p Params) float64 {
	return float64(p.S-1)*(float64(p.D2)+float64(p.C2)) + float64(p.C2)
}
