package bounds

import (
	"math"
	"testing"
	"testing/quick"

	"sessionproblem/internal/sim"
)

func TestFloorLog(t *testing.T) {
	tests := []struct {
		base, x, want int
	}{
		{2, 1, 0},
		{2, 2, 1},
		{2, 3, 1},
		{2, 4, 2},
		{2, 1024, 10},
		{2, 1023, 9},
		{3, 27, 3},
		{3, 26, 2},
		{10, 999, 2},
		{10, 1000, 3},
		{7, 6, 0},
	}
	for _, tt := range tests {
		if got := FloorLog(tt.base, tt.x); got != tt.want {
			t.Errorf("FloorLog(%d,%d): got %d, want %d", tt.base, tt.x, got, tt.want)
		}
	}
}

func TestFloorLogPanics(t *testing.T) {
	for _, bad := range []struct{ base, x int }{{1, 5}, {2, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("FloorLog(%d,%d) should panic", bad.base, bad.x)
				}
			}()
			FloorLog(bad.base, bad.x)
		}()
	}
}

// Property: FloorLog agrees with math.Log within floating-point slop.
func TestFloorLogMatchesFloat(t *testing.T) {
	f := func(baseRaw, xRaw uint16) bool {
		base := int(baseRaw%8) + 2
		x := int(xRaw%10000) + 1
		got := FloorLog(base, x)
		// Verify the defining property directly: base^got <= x < base^(got+1).
		lo := math.Pow(float64(base), float64(got))
		hi := math.Pow(float64(base), float64(got+1))
		return lo <= float64(x)+0.5 && float64(x) < hi+0.5
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func baseParams() Params {
	return Params{
		S: 5, N: 16, B: 3,
		C1: 2, C2: 10,
		Cmin: 2, Cmax: 10,
		D1: 3, D2: 30,
		Gamma: 10,
	}
}

func TestSyncBounds(t *testing.T) {
	p := baseParams()
	l, u := SyncSM(p)
	if l != 50 || u != 50 {
		t.Errorf("SyncSM: got (%v,%v), want (50,50)", l, u)
	}
	l, u = SyncMP(p)
	if l != 50 || u != 50 {
		t.Errorf("SyncMP: got (%v,%v), want (50,50)", l, u)
	}
}

func TestPeriodicBounds(t *testing.T) {
	p := baseParams()
	// L_SM = max(5*10, floor(log_5(31))*2) = max(50, 2*2) = 50.
	if got := PeriodicSML(p); got != 50 {
		t.Errorf("PeriodicSML: got %v, want 50", got)
	}
	// Communication-dominated case: s small, cmin large.
	p2 := p
	p2.S = 1
	p2.Cmax = 1
	p2.Cmin = 1
	p2.N = 1000
	p2.B = 2
	// floor(log_3(1999)) = 6 (3^6=729 <= 1999 < 3^7=2187); max(1, 6*1) = 6.
	if got := PeriodicSML(p2); got != 6 {
		t.Errorf("PeriodicSML comm-dominated: got %v, want 6", got)
	}
	// U_MP = 5*10 + 30 = 80; L_MP = max(50, 30) = 50.
	if got := PeriodicMPU(p); got != 80 {
		t.Errorf("PeriodicMPU: got %v, want 80", got)
	}
	if got := PeriodicMPL(p); got != 50 {
		t.Errorf("PeriodicMPL: got %v, want 50", got)
	}
	p3 := p
	p3.D2 = 500
	if got := PeriodicMPL(p3); got != 500 {
		t.Errorf("PeriodicMPL delay-dominated: got %v, want 500", got)
	}
	if u := PeriodicSMU(p); u < PeriodicSML(p) {
		t.Errorf("PeriodicSMU %v below PeriodicSML %v", u, PeriodicSML(p))
	}
}

func TestSemiSyncBounds(t *testing.T) {
	p := baseParams()
	// L_MP = min(floor(10/4)*10, 30+10)*(5-1) = min(20, 40)*4 = 80.
	if got := SemiSyncMPL(p); got != 80 {
		t.Errorf("SemiSyncMPL: got %v, want 80", got)
	}
	// U_MP = min((floor(10/2)+1)*10, 30+10)*4 + 10 = min(60,40)*4+10 = 170.
	if got := SemiSyncMPU(p); got != 170 {
		t.Errorf("SemiSyncMPU: got %v, want 170", got)
	}
	// L_SM = min(floor(10/4)*10, floor(log_3 16)*10)*4 = min(20, 20)*4 = 80.
	if got := SemiSyncSML(p); got != 80 {
		t.Errorf("SemiSyncSML: got %v, want 80", got)
	}
	if u := SemiSyncSMU(p); u < SemiSyncSML(p) {
		t.Errorf("SemiSyncSMU %v below L %v", u, SemiSyncSML(p))
	}
}

func TestSporadicBounds(t *testing.T) {
	p := baseParams()
	// u = 27, K = 2*30*2/(30-13.5) = 120/16.5 ≈ 7.27.
	k := SporadicK(p)
	if math.Abs(k-120/16.5) > 1e-9 {
		t.Errorf("SporadicK: got %v, want %v", k, 120/16.5)
	}
	// L = max(floor(27/8)*K, 2) * 4 = max(3*7.27.., 2)*4.
	want := 3 * k * 4
	if got := SporadicMPL(p); math.Abs(got-want) > 1e-9 {
		t.Errorf("SporadicMPL: got %v, want %v", got, want)
	}
	// U (Theorem 6.1 form): min((floor(27/2)+1)*10+27+20, 30+10)*(5-2)+30+20
	//   = min(187, 40)*3 + 50 = 170.
	if got := SporadicMPU(p); got != 170 {
		t.Errorf("SporadicMPU: got %v, want 170", got)
	}
	// s=1: no per-session term, just the first-session cost d2+2γ.
	p1 := p
	p1.S = 1
	if got := SporadicMPU(p1); got != 50 {
		t.Errorf("SporadicMPU s=1: got %v, want 50", got)
	}
}

func TestSporadicLimitBehaviour(t *testing.T) {
	// d1 -> d2 (u -> 0): per-session L -> c1, U -> O(γ); the model behaves
	// synchronously.
	p := baseParams()
	p.D1 = p.D2 // u = 0
	if got := SporadicMPL(p); got != float64(p.C1)*float64(p.S-1) {
		t.Errorf("u=0 lower: got %v, want %v", got, float64(p.C1)*float64(p.S-1))
	}
	// u=0: per-session cost is min(γ+0+2γ, d2+γ) = 3γ = 30 — O(γ), like the
	// synchronous model. Total: 30*(5-2) + 30 + 20 = 140.
	uAt0 := SporadicMPU(p)
	if uAt0 != 140 {
		t.Errorf("u=0 upper: got %v, want 140", uAt0)
	}

	// d1 -> 0 (u -> d2): per-session cost becomes d2+γ = 40 — like the
	// asynchronous model. Total: 40*(5-2) + 30 + 20 = 170.
	p.D1 = 0
	if got := SporadicMPU(p); got != 170 {
		t.Errorf("u=d2 upper: got %v, want 170", got)
	}
	if uAt0 >= SporadicMPU(p) {
		t.Error("tight delays must give a smaller bound than loose delays")
	}
}

func TestAsyncBounds(t *testing.T) {
	p := baseParams()
	// L_MP = 4*30 = 120; U_MP = 4*40+10 = 170.
	if got := AsyncMPL(p); got != 120 {
		t.Errorf("AsyncMPL: got %v, want 120", got)
	}
	if got := AsyncMPU(p); got != 170 {
		t.Errorf("AsyncMPU: got %v, want 170", got)
	}
	// L_SM = 4*floor(log_3 16) = 4*2 = 8 rounds.
	if got := AsyncSML(p); got != 8 {
		t.Errorf("AsyncSML: got %v, want 8", got)
	}
	if AsyncSMU(p) < AsyncSML(p) {
		t.Error("AsyncSMU below AsyncSML")
	}
	if SporadicSML(p) != AsyncSML(p) || SporadicSMU(p) != AsyncSMU(p) {
		t.Error("sporadic SM bounds must equal async SM bounds")
	}
}

func TestTreeGeometry(t *testing.T) {
	if TreeArity(2) != 2 || TreeArity(3) != 2 || TreeArity(5) != 4 {
		t.Error("TreeArity wrong")
	}
	tests := []struct{ n, b, want int }{
		{1, 2, 1}, {2, 3, 1}, {4, 3, 2}, {8, 3, 3}, {9, 4, 2}, {64, 3, 6},
	}
	for _, tt := range tests {
		if got := TreeDepth(tt.n, tt.b); got != tt.want {
			t.Errorf("TreeDepth(%d,%d): got %d, want %d", tt.n, tt.b, got, tt.want)
		}
	}
	if CommSteps(8, 3) <= 0 {
		t.Error("CommSteps must be positive")
	}
}

// Property: every upper bound dominates its lower bound across random
// parameter draws.
func TestUpperDominatesLowerProperty(t *testing.T) {
	f := func(sRaw, nRaw, bRaw, c1Raw, c2Raw, d1Raw, d2Raw uint8) bool {
		p := Params{
			S:  int(sRaw%10) + 2,
			N:  int(nRaw%50) + 1,
			B:  int(bRaw%4) + 2,
			C1: sim.Duration(c1Raw%8) + 1,
			D1: sim.Duration(d1Raw % 20),
		}
		p.C2 = p.C1 + sim.Duration(c2Raw%20)
		p.Cmin, p.Cmax = p.C1, p.C2
		p.D2 = p.D1 + sim.Duration(d2Raw%40)
		p.Gamma = p.C2
		if l, u := SyncSM(p); u < l {
			return false
		}
		if PeriodicSMU(p) < PeriodicSML(p) && float64(p.S)*float64(p.Cmax) >= PeriodicSML(p) {
			return false
		}
		if PeriodicMPU(p) < PeriodicMPL(p) {
			return false
		}
		if SemiSyncMPU(p) < SemiSyncMPL(p) {
			return false
		}
		if AsyncMPU(p) < AsyncMPL(p) {
			return false
		}
		if SporadicMPU(p) < 0 || SporadicMPL(p) < 0 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
