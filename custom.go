package sessionproblem

import (
	"fmt"

	"sessionproblem/internal/bounds"
	"sessionproblem/internal/check"
	"sessionproblem/internal/core"
	"sessionproblem/internal/fault"
	"sessionproblem/internal/model"
	"sessionproblem/internal/sim"
	"sessionproblem/internal/sm"
	"sessionproblem/internal/timing"
)

// This file is the library-extension surface of the facade: everything a
// user needs to design their own session algorithm, run it under any of the
// paper's timing models, and validate it with the same pipeline the
// built-in algorithms pass — without importing internal packages.

// Spec is one instance of the (s, n)-session problem: s required sessions
// over n ports, with b the shared-variable access bound (shared memory
// only; 0 means unbounded).
type Spec = core.Spec

// TimingModel is a fully-parameterized timing model; build one with the
// New*Model constructors.
type TimingModel = timing.Model

// SMAlgorithm builds a shared-memory system solving the session problem.
// Implement it to plug a custom algorithm into Solve and ValidateSM.
type SMAlgorithm = core.SMAlgorithm

// MPAlgorithm builds a message-passing system solving the session problem.
type MPAlgorithm = core.MPAlgorithm

// SMValue is the value stored in a shared variable.
type SMValue = sm.Value

// SMProcess is one shared-memory process: Target names the variable its
// next step accesses, Step transforms that variable's value, and Idle
// reports whether the process has finished (idle states must be stable).
type SMProcess = sm.Process

// SMPortBinding designates a shared variable as a port and names the
// unique process owning it.
type SMPortBinding = sm.PortBinding

// SMSystem is a complete shared-memory system: processes, port bindings
// and the access bound B. SMAlgorithm.BuildSM returns one.
type SMSystem = sm.System

// VarID identifies a shared variable.
type VarID = model.VarID

// NewSynchronousModel returns the synchronous model: every step gap is
// exactly c2 and every message delay exactly d2.
func NewSynchronousModel(c2, d2 Ticks) TimingModel {
	return timing.NewSynchronous(sim.Duration(c2), sim.Duration(d2))
}

// NewPeriodicModel returns the periodic model: each process steps at an
// unknown constant period in [cmin, cmax]; delays are in [0, d2]. Pass
// d2 = 0 for shared-memory use.
func NewPeriodicModel(cmin, cmax, d2 Ticks) TimingModel {
	return timing.NewPeriodic(sim.Duration(cmin), sim.Duration(cmax), sim.Duration(d2))
}

// NewSemiSynchronousModel returns the semi-synchronous model: step gaps in
// [c1, c2] with both bounds known, delays in [0, d2].
func NewSemiSynchronousModel(c1, c2, d2 Ticks) TimingModel {
	return timing.NewSemiSynchronous(sim.Duration(c1), sim.Duration(c2), sim.Duration(d2))
}

// NewSporadicModel returns the sporadic model: step gaps at least c1 with
// no upper bound, delays in [d1, d2]. gapCap bounds the gaps schedulers
// actually draw; pass 0 for the default max(4·c1, d2).
func NewSporadicModel(c1, d1, d2, gapCap Ticks) TimingModel {
	return timing.NewSporadic(sim.Duration(c1), sim.Duration(d1), sim.Duration(d2), sim.Duration(gapCap))
}

// NewAsynchronousSMModel returns the asynchronous shared-memory model:
// no gap bounds, running time measured in rounds. gapCap bounds the gaps
// schedulers draw; pass 0 for the default of 8.
func NewAsynchronousSMModel(gapCap Ticks) TimingModel {
	return timing.NewAsynchronousSM(sim.Duration(gapCap))
}

// NewAsynchronousMPModel returns the asynchronous message-passing model:
// c1 = d1 = 0 with finite known c2 and d2.
func NewAsynchronousMPModel(c2, d2 Ticks) TimingModel {
	return timing.NewAsynchronousMP(sim.Duration(c2), sim.Duration(d2))
}

// FaultPlan is a deterministic fault-injection plan: a seed, an intensity
// (per-injection-point probability) and the fault kinds to draw from. Build
// one with NewFaultPlan and pass it to Solve via WithFaultPlan.
type FaultPlan = fault.Plan

// FaultKind identifies one injectable fault class.
type FaultKind = fault.Kind

// The injectable fault kinds. Step faults (crash, overrun, stale read)
// apply to both communication models; message faults (drop, duplicate,
// late delivery) apply to message passing only. Stale reads apply to
// shared memory only.
const (
	FaultCrash            = fault.Crash
	FaultStepOverrun      = fault.StepOverrun
	FaultStaleRead        = fault.StaleRead
	FaultMessageDrop      = fault.MessageDrop
	FaultMessageDuplicate = fault.MessageDuplicate
	FaultLateDelivery     = fault.LateDelivery
)

// NewFaultPlan returns a fault plan with the given seed and intensity,
// restricted to the given kinds (none means all). The same plan injects
// the same faults into the same run, every time, at any parallelism.
func NewFaultPlan(seed uint64, intensity float64, kinds ...FaultKind) FaultPlan {
	return fault.NewPlan(seed, intensity, kinds...)
}

// AllFaultKinds lists every injectable fault kind.
func AllFaultKinds() []FaultKind { return fault.AllKinds() }

// Strategies lists the scheduling strategy names accepted by WithSchedule,
// in the order the harness sweeps them.
func Strategies() []string {
	var out []string
	for _, st := range timing.AllStrategies() {
		out = append(out, st.String())
	}
	return out
}

// ValidationItem is one verification step's outcome.
type ValidationItem struct {
	Name   string
	Passed bool
	Detail string
}

// Validation is the outcome of a ValidateSM or ValidateMP run.
type Validation struct {
	Algorithm string
	Items     []ValidationItem
}

// OK reports whether every item passed.
func (v *Validation) OK() bool {
	for _, it := range v.Items {
		if !it.Passed {
			return false
		}
	}
	return true
}

func validationOf(rep *check.Report) *Validation {
	v := &Validation{Algorithm: rep.Algorithm}
	for _, it := range rep.Items {
		v.Items = append(v.Items, ValidationItem{Name: it.Name, Passed: it.Passed, Detail: it.Detail})
	}
	return v
}

// ValidateSM vets a shared-memory algorithm the way the built-in ones are
// vetted: sampled schedules across every strategy (WithSeeds seeds each),
// optional exhaustive small-schedule model checking (WithExhaustiveGaps —
// keep the instance tiny), idle-stability probing, and the matching
// lower-bound adversary for the model.
func ValidateSM(alg SMAlgorithm, spec Spec, m TimingModel, opts ...Option) *Validation {
	cfg := newSettings(opts)
	return validationOf(check.SM(alg, check.SMOptions{
		Spec:           spec,
		Model:          m,
		Seeds:          cfg.seeds,
		ExhaustiveGaps: cfg.exhaustiveGaps,
	}))
}

// ValidateMP vets a message-passing algorithm: sampled schedules, optional
// exhaustive checking (WithExhaustiveGaps and WithExhaustiveDelays, equal
// cardinality), and the sporadic retiming adversary where applicable.
func ValidateMP(alg MPAlgorithm, spec Spec, m TimingModel, opts ...Option) *Validation {
	cfg := newSettings(opts)
	return validationOf(check.MP(alg, check.MPOptions{
		Spec:             spec,
		Model:            m,
		Seeds:            cfg.seeds,
		ExhaustiveGaps:   cfg.exhaustiveGaps,
		ExhaustiveDelays: cfg.exhaustiveDelays,
	}))
}

// Envelope is a paper-predicted running-time envelope for one Table-1 cell.
type Envelope struct {
	// Lower and Upper are the bound formulas evaluated at the configured
	// parameters.
	Lower, Upper float64
	// Unit is "time" (ticks) or "rounds" (asynchronous shared memory).
	Unit string
}

// PaperEnvelope evaluates the paper's Table-1 bound formulas for one
// (timing model, communication model) cell at the configured parameters
// (WithSpec, WithAccessBound, WithStepBounds, WithPeriodRange,
// WithDelayBounds). The sporadic message-passing upper bound depends on γ,
// the largest step time of a concrete computation — supply it with
// WithGamma (Solve reports it as Report.Gamma).
func PaperEnvelope(m Model, comm Comm, opts ...Option) (Envelope, error) {
	cfg := newSettings(opts)
	p := bounds.Params{
		S: cfg.s, N: cfg.n, B: cfg.b,
		C1: cfg.c1, C2: cfg.c2,
		Cmin: cfg.cmin, Cmax: cfg.cmax,
		D1: cfg.d1, D2: cfg.d2,
		Gamma: cfg.gamma,
	}
	mp := comm == MessagePassing
	if !mp && comm != SharedMemory {
		return Envelope{}, fmt.Errorf("sessionproblem: unknown communication model %q (want sm or mp)", comm)
	}
	e := Envelope{Unit: "time"}
	switch m {
	case Synchronous:
		if mp {
			e.Lower, e.Upper = bounds.SyncMP(p)
		} else {
			e.Lower, e.Upper = bounds.SyncSM(p)
		}
	case Periodic:
		if mp {
			e.Lower, e.Upper = bounds.PeriodicMPL(p), bounds.PeriodicMPU(p)
		} else {
			e.Lower, e.Upper = bounds.PeriodicSML(p), bounds.PeriodicSMU(p)
		}
	case SemiSynchronous:
		if mp {
			e.Lower, e.Upper = bounds.SemiSyncMPL(p), bounds.SemiSyncMPU(p)
		} else {
			e.Lower, e.Upper = bounds.SemiSyncSML(p), bounds.SemiSyncSMU(p)
		}
	case Sporadic:
		if !mp {
			return Envelope{}, fmt.Errorf("sessionproblem: the sporadic SM model equals the asynchronous SM model; use Asynchronous")
		}
		e.Lower, e.Upper = bounds.SporadicMPL(p), bounds.SporadicMPU(p)
	case Asynchronous:
		if mp {
			e.Lower, e.Upper = bounds.AsyncMPL(p), bounds.AsyncMPU(p)
		} else {
			e.Lower, e.Upper = bounds.AsyncSML(p), bounds.AsyncSMU(p)
			e.Unit = "rounds"
		}
	default:
		return Envelope{}, fmt.Errorf("sessionproblem: unknown model %q", m)
	}
	return e, nil
}
