package sessionproblem

import (
	"fmt"
	"time"

	"sessionproblem/internal/core"
	"sessionproblem/internal/diskcache"
	"sessionproblem/internal/engine"
	"sessionproblem/internal/fault"
	"sessionproblem/internal/harness"
	"sessionproblem/internal/journal"
	"sessionproblem/internal/sim"
	"sessionproblem/internal/timing"
)

// Ticks is a duration or instant in simulator virtual time.
type Ticks = int64

// Observation is one completed simulator run, delivered to the observer in
// completion order (nondeterministic under parallelism; aggregate results
// come back in deterministic matrix order regardless).
type Observation struct {
	// Label identifies the run, e.g. "periodic/MP slow seed 2".
	Label string
	// Worker is the worker-pool slot (0..Parallelism-1) that ran it.
	Worker int
	// Wall is the run's wall-clock duration.
	Wall time.Duration
	// Steps, Sessions and Messages are the run's simulator counts; Faults
	// counts injected faults the run applied.
	Steps    int
	Sessions int
	Messages int
	Faults   int
	// Err is non-nil when the run failed.
	Err error
}

// Stats is the execution engine's aggregate accounting for one API call.
type Stats struct {
	// Runs counts result slots; Succeeded/Failed/Skipped partition them
	// (Skipped counts tasks never started after a fail-fast abort).
	Runs      int
	Succeeded int
	Failed    int
	Skipped   int
	// Wall is the call's wall-clock time; Busy is the summed per-run wall
	// time across workers, so Busy/Wall measures achieved parallelism.
	Wall time.Duration
	Busy time.Duration
	// Parallelism is the worker-pool width; PerWorker counts runs per slot.
	Parallelism int
	PerWorker   []int
	// Steps, Sessions, Messages and Faults aggregate the simulator counts.
	Steps    int
	Sessions int
	Messages int
	Faults   int
	// CacheHits and CacheMisses count run-cache lookups the call made
	// (zero without WithRunCache).
	CacheHits   int64
	CacheMisses int64
	// BatchLanes, BatchForks and BatchFallbacks account the seed-batching
	// layer (see WithSeedBatching): seeds run through shared lockstep lanes,
	// runs served from a shared schedule prefix, and seeds that fell back to
	// solo runs.
	BatchLanes     int
	BatchForks     int
	BatchFallbacks int
}

// settings is the resolved configuration an API call runs with.
type settings struct {
	s, n, b                    int
	c1, c2, cmin, cmax, d1, d2 sim.Duration
	seeds                      int
	parallelism                int
	timeout                    time.Duration
	observer                   func(Observation)

	strategy string
	seed     uint64

	sweepSteps   int
	maxSessions  int
	periodMaxima []sim.Duration

	gapCap sim.Duration
	gamma  sim.Duration

	exhaustiveGaps   []sim.Duration
	exhaustiveDelays []sim.Duration

	smAlg core.SMAlgorithm
	mpAlg core.MPAlgorithm

	faultPlan        *fault.Plan
	retries          int
	retryBackoff     time.Duration
	faultIntensities []float64
	robustness       bool
	perKindMargins   bool

	runCache    engine.RunCacher
	cacheDir    string
	journalPath string
	journal     *journal.Writer

	noSeedBatch   bool
	streamCertify bool
	topologies    []string
}

// initCache resolves WithCacheDir into the cache the call runs with: a
// two-tier (memory + disk) cache rooted at the directory. A WithRunCache
// *RunCache becomes the memory tier, so its entries stay visible; any other
// custom RunCacher takes precedence and the directory is ignored (the
// caller opted into full control of caching). WithJournal then layers on
// top of whatever cache resulted: surviving journal frames are replayed
// into it (resuming a killed run), and the cache is wrapped so every newly
// verified summary is appended. Called by each run-executing API entry
// point because options cannot fail — an unusable directory or journal
// surfaces as the call's error. Callers must release the journal writer
// with close() when the call completes.
func (s settings) initCache() (settings, error) {
	if s.cacheDir != "" {
		mem, plain := s.runCache.(*engine.RunCache)
		if s.runCache == nil || plain {
			tc, err := diskcache.NewSummaryCache(mem, s.cacheDir)
			if err != nil {
				return s, err
			}
			s.runCache = tc
		}
	}
	if s.journalPath != "" {
		if s.runCache == nil {
			s.runCache = engine.NewRunCache()
		}
		w, _, err := journal.Open(s.journalPath)
		if err != nil {
			return s, err
		}
		// Replay into the undecorated cache first: loading through the
		// decorator would re-append every surviving frame.
		if _, err := journal.Load(s.journalPath, s.runCache); err != nil {
			w.Close()
			return s, err
		}
		s.journal = w
		s.runCache = journal.NewCache(s.runCache, w)
	}
	return s, nil
}

// close releases the call's per-invocation resources (the journal writer;
// appended frames are already durable). Safe on a journal-less settings.
func (s settings) close() {
	if s.journal != nil {
		s.journal.Close()
	}
}

func newSettings(opts []Option) settings {
	def := harness.Default()
	s := settings{
		s: def.S, n: def.N, b: def.B,
		c1: def.C1, c2: def.C2, cmin: def.Cmin, cmax: def.Cmax,
		d1: def.D1, d2: def.D2,
		seeds:       def.Seeds,
		strategy:    "random",
		seed:        1,
		sweepSteps:  9,
		maxSessions: 10,
	}
	for _, o := range opts {
		o(&s)
	}
	return s
}

// harnessConfig maps the settings onto the internal harness configuration,
// wiring in eng as the shared execution engine.
func (s settings) harnessConfig(eng *engine.Engine) harness.Config {
	return harness.Config{
		S: s.s, N: s.n, B: s.b,
		C1: s.c1, C2: s.c2, Cmin: s.cmin, Cmax: s.cmax,
		D1: s.d1, D2: s.d2,
		Seeds:         s.seeds,
		Engine:        eng,
		NoSeedBatch:   s.noSeedBatch,
		StreamCertify: s.streamCertify,
	}
}

// engine builds the worker pool an API call fans out on, translating the
// observer to the public Observation type.
func (s settings) engine() *engine.Engine {
	opts := []engine.Option{engine.WithParallelism(s.parallelism)}
	if s.runCache != nil {
		opts = append(opts, engine.WithRunCache(s.runCache))
	}
	if s.observer != nil {
		obs := s.observer
		opts = append(opts, engine.WithObserver(func(r engine.Result) {
			obs(Observation{
				Label:    r.Label,
				Worker:   r.Worker,
				Wall:     r.Wall,
				Steps:    r.Counts.Steps,
				Sessions: r.Counts.Sessions,
				Messages: r.Counts.Messages,
				Faults:   r.Counts.Faults,
				Err:      r.Err,
			})
		}))
	}
	return engine.New(opts...)
}

func statsOf(eng *engine.Engine) Stats {
	es := eng.Stats()
	return Stats{
		Runs: es.Tasks, Succeeded: es.Succeeded, Failed: es.Failed, Skipped: es.Skipped,
		Wall: es.Wall, Busy: es.Busy,
		Parallelism: es.Parallelism, PerWorker: es.PerWorker,
		Steps: es.Counts.Steps, Sessions: es.Counts.Sessions, Messages: es.Counts.Messages,
		Faults:    es.Counts.Faults,
		CacheHits: es.CacheHits, CacheMisses: es.CacheMisses,
		BatchLanes:     es.Counts.BatchLanes,
		BatchForks:     es.Counts.BatchForks,
		BatchFallbacks: es.Counts.BatchFallbacks,
	}
}

func (s settings) parseStrategy() (timing.Strategy, error) {
	for _, st := range timing.AllStrategies() {
		if st.String() == s.strategy {
			return st, nil
		}
	}
	return 0, fmt.Errorf("sessionproblem: unknown strategy %q (want random, slow, fast, skewed or jittered)", s.strategy)
}

// Option configures an API call. The zero configuration is the library
// default: the mid-sized instance used by cmd/sessiontable (s=6, n=8, b=3,
// c1=2, c2=10, d1=4, d2=28), 3 seeds per strategy, GOMAXPROCS workers, no
// timeout.
type Option func(*settings)

// WithSpec sets the problem instance: s required sessions over n ports.
func WithSpec(s, n int) Option {
	return func(cfg *settings) { cfg.s, cfg.n = s, n }
}

// WithAccessBound sets the shared-variable access bound b (shared-memory
// systems only).
func WithAccessBound(b int) Option {
	return func(cfg *settings) { cfg.b = b }
}

// WithStepBounds sets the per-step timing constants: c1 <= step time <= c2
// (semi-synchronous; c2 doubles as the synchronous step and the periodic
// range is set to [c1, c2] unless WithPeriodRange overrides it).
func WithStepBounds(c1, c2 Ticks) Option {
	return func(cfg *settings) {
		cfg.c1, cfg.c2 = sim.Duration(c1), sim.Duration(c2)
		cfg.cmin, cfg.cmax = sim.Duration(c1), sim.Duration(c2)
	}
}

// WithPeriodRange sets the periodic model's period range [cmin, cmax]
// independently of the semi-synchronous step bounds.
func WithPeriodRange(cmin, cmax Ticks) Option {
	return func(cfg *settings) { cfg.cmin, cfg.cmax = sim.Duration(cmin), sim.Duration(cmax) }
}

// WithDelayBounds sets the message delay window [d1, d2] (d1 is used by the
// sporadic model only).
func WithDelayBounds(d1, d2 Ticks) Option {
	return func(cfg *settings) { cfg.d1, cfg.d2 = sim.Duration(d1), sim.Duration(d2) }
}

// WithSeeds sets how many seeds each scheduling strategy runs.
func WithSeeds(n int) Option {
	return func(cfg *settings) { cfg.seeds = n }
}

// WithParallelism sets the worker-pool width the run matrix fans across.
// Values < 1 mean GOMAXPROCS. Results are identical at any setting.
func WithParallelism(n int) Option {
	return func(cfg *settings) { cfg.parallelism = n }
}

// WithSeedBatching toggles lockstep seed batching (default on): the seeds of
// each (cell, strategy) group run through one shared calendar queue in
// per-seed lanes, with provably seed-independent schedule prefixes computed
// once and forked across lanes. Results are byte-identical either way — the
// toggle trades the batched mode's throughput for per-run observer
// granularity (batched calls report one Observation per seed group).
func WithSeedBatching(on bool) Option {
	return func(cfg *settings) { cfg.noSeedBatch = !on }
}

// WithStreamCertify routes every Table-1 run through the streaming
// certifier: the executors never materialize traces and an online counter
// verifies the session condition, keeping memory O(ports) regardless of
// how many steps a run takes. Results — and run-cache contents — are
// byte-identical to the default materialized path; this is the switch for
// very large port counts, where recorded traces would dominate memory.
func WithStreamCertify() Option {
	return func(cfg *settings) { cfg.streamCertify = true }
}

// WithTopologies selects which point-to-point topology families the
// network-diameter sweep (SweepNetworkDiameter) visits, by name:
// "complete", "star", "ring", "line", "grid", "torus", "expander",
// "random-regular". Generated families are deterministic in the port
// count. Default: the paper's four fixed extremes.
func WithTopologies(names ...string) Option {
	return func(cfg *settings) { cfg.topologies = append([]string(nil), names...) }
}

// WithTimeout bounds the whole call in wall-clock time; in-flight
// simulations are cancelled mid-computation when it expires.
func WithTimeout(d time.Duration) Option {
	return func(cfg *settings) { cfg.timeout = d }
}

// WithObserver registers a callback invoked after every simulator run.
func WithObserver(fn func(Observation)) Option {
	return func(cfg *settings) { cfg.observer = fn }
}

// WithSchedule selects the scheduling strategy ("random", "slow", "fast",
// "skewed", "jittered") and seed for single-run calls (Solve).
func WithSchedule(strategy string, seed uint64) Option {
	return func(cfg *settings) { cfg.strategy, cfg.seed = strategy, seed }
}

// WithSweepSteps sets how many points a parameter sweep samples
// (SweepSporadicDelay).
func WithSweepSteps(n int) Option {
	return func(cfg *settings) { cfg.sweepSteps = n }
}

// WithMaxSessions sets the largest session count a growth sweep reaches
// (SweepPeriodicVsSemiSync sweeps s = 2..max).
func WithMaxSessions(max int) Option {
	return func(cfg *settings) { cfg.maxSessions = max }
}

// WithPeriodMaxima sets the cmax values a period sweep visits
// (SweepPeriodicVsSporadic).
func WithPeriodMaxima(cmaxs ...Ticks) Option {
	return func(cfg *settings) {
		cfg.periodMaxima = make([]sim.Duration, len(cmaxs))
		for i, c := range cmaxs {
			cfg.periodMaxima[i] = sim.Duration(c)
		}
	}
}

// WithGapCap bounds the step gaps schedulers draw under the models with
// unbounded gaps (sporadic, asynchronous shared memory). Zero keeps the
// model's default cap.
func WithGapCap(cap Ticks) Option {
	return func(cfg *settings) { cfg.gapCap = sim.Duration(cap) }
}

// WithGamma supplies γ, the largest step time of a concrete computation,
// to PaperEnvelope's sporadic message-passing upper bound (the sporadic
// model has no a-priori c2; Solve reports γ as Report.Gamma).
func WithGamma(gamma Ticks) Option {
	return func(cfg *settings) { cfg.gamma = sim.Duration(gamma) }
}

// WithExhaustiveGaps enables ValidateSM/ValidateMP's exhaustive pass,
// model-checking every schedule built from these step-gap choices. Keep
// the problem instance tiny: the schedule space is exponential.
func WithExhaustiveGaps(gaps ...Ticks) Option {
	return func(cfg *settings) {
		cfg.exhaustiveGaps = make([]sim.Duration, len(gaps))
		for i, g := range gaps {
			cfg.exhaustiveGaps[i] = sim.Duration(g)
		}
	}
}

// WithExhaustiveDelays sets the message-delay choices of ValidateMP's
// exhaustive pass (must match WithExhaustiveGaps in cardinality).
func WithExhaustiveDelays(delays ...Ticks) Option {
	return func(cfg *settings) {
		cfg.exhaustiveDelays = make([]sim.Duration, len(delays))
		for i, d := range delays {
			cfg.exhaustiveDelays[i] = sim.Duration(d)
		}
	}
}

// WithSMAlgorithm makes Solve run the given shared-memory algorithm
// instead of the model's designated built-in one.
func WithSMAlgorithm(alg SMAlgorithm) Option {
	return func(cfg *settings) { cfg.smAlg = alg }
}

// WithMPAlgorithm makes Solve run the given message-passing algorithm
// instead of the model's designated built-in one.
func WithMPAlgorithm(alg MPAlgorithm) Option {
	return func(cfg *settings) { cfg.mpAlg = alg }
}

// WithFaultPlan wires a deterministic fault plan into Solve: the executor
// injects the plan's faults and the run is audited instead of failed —
// Report.Admissible, Verdict and Violations carry the outcome, and a broken
// session guarantee is reported honestly rather than returned as an error.
// The plan also seeds SweepFaultIntensity and the robustness-margin sweep.
func WithFaultPlan(p FaultPlan) Option {
	return func(cfg *settings) { cfg.faultPlan = &p }
}

// WithRetries makes Solve retry a run whose audit verdict is not admissible
// up to n extra times. Each attempt derives a fresh fault-plan seed (attempt
// k uses Seed+k), so retries explore different fault draws over the same
// schedule; the best outcome (admissible > recovered > broken) is reported,
// with Report.Attempts counting the runs. Retries never mask cancellation:
// an expired context surfaces as ctx.Err() immediately.
func WithRetries(n int) Option {
	return func(cfg *settings) { cfg.retries = n }
}

// WithRetryBackoff inserts a wall-clock pause between Solve retry attempts,
// interruptible by the call's context.
func WithRetryBackoff(d time.Duration) Option {
	return func(cfg *settings) { cfg.retryBackoff = d }
}

// WithFaultIntensities sets the intensity axis used by SweepFaultIntensity
// and by Solve's robustness-margin sweep. Values are sorted ascending
// before use. Default {0, 0.05, 0.1, 0.2, 0.4, 0.8}.
func WithFaultIntensities(intensities ...float64) Option {
	return func(cfg *settings) {
		cfg.faultIntensities = append([]float64(nil), intensities...)
	}
}

// WithRobustnessMargin makes Solve additionally run a deterministic sweep
// over the fault-intensity axis (same schedule, the fault plan rescaled per
// intensity) and report the largest prefix intensity at which the session
// guarantee still held as Report.RobustnessMargin. Without this option the
// field is -1 (not computed).
func WithRobustnessMargin() Option {
	return func(cfg *settings) { cfg.robustness = true }
}

// WithPerKindMargins extends the robustness sweep with a per-fault-class
// axis: for every injectable fault kind, Solve reruns the intensity sweep
// with the plan restricted to that kind alone and reports the per-kind
// margins as Report.RobustnessMargins. Implies WithRobustnessMargin.
func WithPerKindMargins() Option {
	return func(cfg *settings) { cfg.robustness = true; cfg.perKindMargins = true }
}

// RunCache is a content-addressed cache of verified simulator runs, shared
// across API calls: a run is keyed by everything that determines it (spec,
// timing constants, algorithm, strategy, seed, fault plan, step cap), so two
// calls whose matrices overlap simulate each unique run once. Cached entries
// are immutable summaries — hits never alias a live trace — and results are
// byte-identical with and without a cache. Safe for concurrent use.
type RunCache = engine.RunCache

// RunCacher is the cache contract WithRunCache accepts: the in-memory
// RunCache is the canonical implementation, and WithCacheDir composes it
// with a disk-persistent tier behind the same interface. Implementations
// must be safe for concurrent use, hand out only immutable values, and
// count every Get as exactly one hit or miss.
type RunCacher = engine.RunCacher

// NewRunCache returns an empty run cache for WithRunCache.
func NewRunCache() *RunCache { return engine.NewRunCache() }

// WithRunCache attaches a run cache to the call — a *RunCache or any
// RunCacher. Table1, Hierarchy, the sweeps and Solve consult it;
// Stats.CacheHits/CacheMisses report the call's lookup counts (the cache's
// own Hits/Misses methods report cumulative totals across calls).
func WithRunCache(c RunCacher) Option {
	return func(cfg *settings) { cfg.runCache = c }
}

// WithCacheDir persists verified run summaries in a content-addressed
// object store rooted at dir, surviving process restarts: a call whose runs
// were computed by any earlier process reuses them from disk. The disk tier
// sits under an in-memory cache (the WithRunCache one when given a plain
// *RunCache, else a fresh one) and results are byte-identical with and
// without it — a damaged or version-skewed object degrades to a recompute,
// never to a wrong answer. The directory is created as needed; an unusable
// path fails the call.
func WithCacheDir(dir string) Option {
	return func(cfg *settings) { cfg.cacheDir = dir }
}

// WithJournal makes the call crash-safe and resumable: every verified run
// summary is appended to the CRC-framed journal at path — fsynced before
// the run is counted done — and, on a later call with the same inputs, the
// journal's surviving frames are replayed into the run cache first, so only
// the missing or failed cells re-execute. The resumed result is
// byte-identical to an uninterrupted run. A torn or bit-flipped tail (the
// signature of a kill mid-append) is truncated away on open; a journal
// written by a different summary codec version degrades to recomputation,
// never to a wrong answer. Composes with WithRunCache and WithCacheDir; on
// its own, the journal feeds a fresh in-memory cache.
func WithJournal(path string) Option {
	return func(cfg *settings) { cfg.journalPath = path }
}
