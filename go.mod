module sessionproblem

go 1.22
