// Avionics: the paper motivates the periodic timing constraint with
// applications "such as avionics and process control when accurate control
// requires continual sampling and processing of data" (Section 1, citing
// Jeffay et al.).
//
// This example models a flight-control data bus: n sensor tasks (air data,
// inertial, GPS, radar altimeter) each sample at a fixed hardware-defined
// rate that the software does not know exactly — only a range. A control-law
// update is safe to compute after a "synchronization round" in which every
// sensor has contributed a fresh sample: exactly one session of the
// (s, n)-session problem per control frame. Certifying s control frames and
// then quiescing the bus is the (s, n)-session problem in the periodic
// shared-memory model, with the sample buffers as the ports.
//
// Run with:
//
//	go run ./examples/avionics
package main

import (
	"context"
	"fmt"
	"log"

	"sessionproblem"
)

func main() {
	sensors := []string{"air-data", "inertial", "gps", "radar-altimeter"}
	const controlFrames = 8 // s: control-law updates to certify
	ctx := context.Background()

	// Sensor tasks sample at constant unknown rates between 5 and 20 ticks
	// (the periodic constraint). The skewed strategy makes the radar
	// altimeter... process 0, actually — the slowest device, the worst case
	// for frame alignment.
	instance := []sessionproblem.Option{
		sessionproblem.WithSpec(controlFrames, len(sensors)),
		sessionproblem.WithAccessBound(3),
		sessionproblem.WithPeriodRange(5, 20),
	}

	fmt.Printf("avionics bus: %d sensors, certifying %d control frames\n", len(sensors), controlFrames)
	fmt.Println("sensors:", sensors)
	fmt.Println()

	worst := sessionproblem.Ticks(0)
	for _, strategy := range sessionproblem.Strategies() {
		opts := append([]sessionproblem.Option{sessionproblem.WithSchedule(strategy, 42)}, instance...)
		report, err := sessionproblem.Solve(ctx,
			sessionproblem.Periodic, sessionproblem.SharedMemory, opts...)
		if err != nil {
			log.Fatalf("strategy %v: %v", strategy, err)
		}
		fmt.Printf("  %-9v schedule: %2d frames in %4v ticks (%d steps)\n",
			strategy, report.Sessions, report.Finish, report.Steps)
		if report.Finish > worst {
			worst = report.Finish
		}
	}

	env, err := sessionproblem.PaperEnvelope(
		sessionproblem.Periodic, sessionproblem.SharedMemory, instance...)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nworst observed frame-certification time: %d ticks\n", worst)
	fmt.Printf("paper envelope: [%.0f, %.0f] ticks (Theorems 4.3 / 4.1)\n", env.Lower, env.Upper)

	// Show the frame boundaries of one run.
	opts := append([]sessionproblem.Option{sessionproblem.WithSchedule("skewed", 42)}, instance...)
	report, err := sessionproblem.Solve(ctx,
		sessionproblem.Periodic, sessionproblem.SharedMemory, opts...)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nframe boundaries under the skewed schedule (slow sensor 0):")
	for _, span := range report.Spans {
		fmt.Printf("  frame %d complete at t=%v\n", span.Index, span.End)
	}
}
