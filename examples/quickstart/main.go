// Quickstart: solve a (4, 3)-session problem with the periodic-model
// algorithm A(p) over the message-passing simulator through the public
// sessionproblem API, verify the result, and print the paper's Theorem 4.1
// bound next to the measured running time.
//
// The public facade replaces direct internal/ imports: external users
// configure runs with functional options and never touch the simulator
// wiring.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"sessionproblem"
)

func main() {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	// Problem: s = 4 disjoint sessions over n = 3 ports, under the periodic
	// model — every process steps at a constant but unknown period in
	// [2, 10] ticks; message delays are in [0, 25]. The "slow" schedule is
	// the adversarial one: slowest periods, maximum delays. Solve verifies
	// admissibility and counts disjoint sessions.
	report, err := sessionproblem.Solve(ctx,
		sessionproblem.Periodic, sessionproblem.MessagePassing,
		sessionproblem.WithSpec(4, 3),
		sessionproblem.WithPeriodRange(2, 10),
		sessionproblem.WithDelayBounds(0, 25),
		sessionproblem.WithSchedule("slow", 1))
	if err != nil {
		log.Fatal(err)
	}

	// The paper's envelope for this cell: L = max{s*cmax, d2} (Theorem
	// 4.2), U = s*cmax + d2 (Theorem 4.1), at s=4, cmax=10, d2=25.
	lower, upper := 4*10, 4*10+25
	fmt.Println("quickstart: (4,3)-session problem, periodic model, algorithm A(p)")
	fmt.Printf("  algorithm:         %s\n", report.Algorithm)
	fmt.Printf("  sessions achieved: %d (required 4)\n", report.Sessions)
	fmt.Printf("  running time:      %d ticks\n", report.Finish)
	fmt.Printf("  paper lower bound: %d ticks (Theorem 4.2: max{s*cmax, d2})\n", lower)
	fmt.Printf("  paper upper bound: %d ticks (Theorem 4.1: s*cmax + d2)\n", upper)
	fmt.Printf("  broadcasts used:   %d (one per process)\n", report.Messages)
}
