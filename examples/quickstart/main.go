// Quickstart: solve a (4, 3)-session problem with the periodic-model
// algorithm A(p) over the message-passing simulator, verify the result, and
// print the paper's Theorem 4.1 bound next to the measured running time.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"sessionproblem/internal/alg/periodic"
	"sessionproblem/internal/bounds"
	"sessionproblem/internal/core"
	"sessionproblem/internal/timing"
)

func main() {
	// Problem: s = 4 disjoint sessions over n = 3 ports.
	spec := core.Spec{S: 4, N: 3}

	// Timing model: periodic — every process steps at a constant but
	// unknown period in [2, 10] ticks; message delays are in [0, 25].
	model := timing.NewPeriodic(2, 10, 25)

	// Run A(p) under an adversarial schedule (slowest periods, maximum
	// delays). RunMP re-checks admissibility and counts disjoint sessions.
	report, err := core.RunMP(periodic.NewMP(), spec, model, timing.Slow, 1)
	if err != nil {
		log.Fatal(err)
	}

	p := bounds.Params{S: spec.S, N: spec.N, Cmin: 2, Cmax: 10, D2: 25}
	fmt.Println("quickstart: (4,3)-session problem, periodic model, algorithm A(p)")
	fmt.Printf("  sessions achieved: %d (required %d)\n", report.Sessions, spec.S)
	fmt.Printf("  running time:      %v ticks\n", report.Finish)
	fmt.Printf("  paper lower bound: %.0f ticks (Theorem 4.2: max{s*cmax, d2})\n", bounds.PeriodicMPL(p))
	fmt.Printf("  paper upper bound: %.0f ticks (Theorem 4.1: s*cmax + d2)\n", bounds.PeriodicMPU(p))
	fmt.Printf("  broadcasts used:   %d (one per process)\n", report.Messages)
}
