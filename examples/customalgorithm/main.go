// Customalgorithm: the library-adoption story. A user designs their own
// session algorithm for the semi-synchronous model — a "double-wait"
// variant that takes 2*(floor(c2/c1)+1) steps per session, trading time for
// simplicity — plugs it into the sessionproblem.SMAlgorithm interface, and
// validates it with the same pipeline the built-in algorithms pass: sampled
// schedules, exhaustive small-schedule model checking, idle-stability
// probes, and the Theorem 5.1 reorder adversary.
//
// A second, broken variant waits only floor(c2/(2c1)) steps per session —
// spanning about half of c2, not enough to guarantee every other process
// stepped — and the suite catches it: the skewed sampled schedule and the
// exhaustive enumeration both produce computations with too few sessions.
//
// Run with:
//
//	go run ./examples/customalgorithm
package main

import (
	"fmt"
	"os"

	"sessionproblem"
)

// doubleWait is the user's algorithm family: every port process takes
// stepsOf(s, model) port steps on its own port and idles. The correct
// instantiation waits 2*(floor(c2/c1)+1) steps per session; the broken one
// waits floor(c2/(2c1)).
type doubleWait struct {
	name    string
	stepsOf func(s int, m sessionproblem.TimingModel) int
}

func (d doubleWait) Name() string { return d.name }

func (d doubleWait) BuildSM(spec sessionproblem.Spec, m sessionproblem.TimingModel) (*sessionproblem.SMSystem, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	b := spec.B
	if b == 0 {
		b = 2
	}
	sys := &sessionproblem.SMSystem{B: b}
	for i := 0; i < spec.N; i++ {
		v := sessionproblem.VarID(i)
		sys.Procs = append(sys.Procs, &walker{v: v, left: d.stepsOf(spec.S, m)})
		sys.Ports = append(sys.Ports, sessionproblem.SMPortBinding{Var: v, Proc: i})
	}
	return sys, nil
}

// walker steps on its own port a fixed number of times.
type walker struct {
	v    sessionproblem.VarID
	left int
}

func (w *walker) Target() sessionproblem.VarID { return w.v }
func (w *walker) Step(old sessionproblem.SMValue) sessionproblem.SMValue {
	if w.left == 0 {
		return old
	}
	w.left--
	n, _ := old.(int)
	return n + 1
}
func (w *walker) Idle() bool { return w.left == 0 }

func main() {
	m := sessionproblem.NewSemiSynchronousModel(2, 9, 0)
	spec := sessionproblem.Spec{S: 3, N: 4, B: 2}

	correct := doubleWait{
		name: "double-wait",
		stepsOf: func(s int, m sessionproblem.TimingModel) int {
			w := int(m.C2/m.C1) + 1
			return (s-1)*2*w + 1
		},
	}
	broken := doubleWait{
		name: "broken-wait (half the wait)",
		stepsOf: func(s int, m sessionproblem.TimingModel) int {
			w := int(m.C2 / (2 * m.C1)) // spans only ~c2/2: not enough
			return (s-1)*w + 1
		},
	}

	exit := 0
	for _, alg := range []sessionproblem.SMAlgorithm{correct, broken} {
		fmt.Printf("validating %q under the semi-synchronous model (c1=2, c2=9)\n", alg.Name())
		rep := sessionproblem.ValidateSM(alg, spec, m,
			sessionproblem.WithSeeds(3),
			sessionproblem.WithExhaustiveGaps(2, 9))
		for _, item := range rep.Items {
			mark := "ok  "
			if !item.Passed {
				mark = "FAIL"
			}
			fmt.Printf("  [%s] %-22s %s\n", mark, item.Name, item.Detail)
		}
		if rep.OK() {
			fmt.Println("  verdict: PASS")
		} else {
			fmt.Println("  verdict: FAIL (as the suite should say for a broken design)")
			if alg.Name() == correct.name {
				exit = 1
			}
		}
		fmt.Println()
	}
	os.Exit(exit)
}
