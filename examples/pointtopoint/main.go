// Pointtopoint: the paper compares against [4], whose results are stated
// for point-to-point networks and carry a network-diameter factor; the
// paper folds that factor into d2 ("we have replaced all occurrences of the
// diameter factor with 1 ... d2 subsumes the diameter factor"). This
// example runs the same asynchronous session algorithm over four concrete
// topologies with identical per-hop delay bounds and shows the measured
// running time tracking diameter * hop-delay through the abstract Table-1
// bound.
//
// Run with:
//
//	go run ./examples/pointtopoint
package main

import (
	"context"
	"fmt"
	"log"

	"sessionproblem"
)

func main() {
	const (
		sessions = 4
		nodes    = 8
		c2       = 3  // step-time bound
		hopDelay = 10 // per-hop delay in [0, 10]
	)
	fmt.Printf("(%d,%d)-session problem, asynchronous algorithm, per-hop delay <= %d\n\n",
		sessions, nodes, hopDelay)

	res, err := sessionproblem.Sweep(context.Background(), sessionproblem.SweepNetworkDiameter,
		sessionproblem.WithSpec(sessions, nodes),
		sessionproblem.WithStepBounds(1, c2),
		sessionproblem.WithDelayBounds(0, hopDelay),
		sessionproblem.WithSeeds(3))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("topology   diameter  effective d2  measured worst  abstract bound")
	for _, p := range res.Points {
		diameter := sessionproblem.Ticks(p.X)
		fmt.Printf("%-10s %-9d %-13v %-15.0f %.0f\n",
			p.Label, diameter, diameter*hopDelay, p.Measured, p.PaperUpper)
	}
	fmt.Println("\nThe same algorithm, the same hop delays — only the diameter differs.")
	fmt.Println("Substituting d2 := diameter * hop-delay makes every run admissible for the")
	fmt.Println("paper's broadcast model and keeps it inside the (s-1)(d2+c2)+c2 bound:")
	fmt.Println("the conversion the paper applies to Table 1, demonstrated.")
}
