// Event-driven: the paper motivates the sporadic timing constraint with
// "event-driven processing such as responding to user inputs or
// non-periodic device interrupts; these events occur repeatedly, but the
// time interval between consecutive occurrences varies and can be
// arbitrarily large" (Section 1).
//
// This example models interrupt-handler threads on a device mesh: each
// handler runs only when its device fires, so consecutive steps can be
// arbitrarily far apart (but not closer than the c1 interrupt-latency
// floor). The handlers must collectively certify s barrier generations —
// each generation needs every handler to have run at least once — before
// powering down: the (s, n)-session problem in the sporadic
// message-passing model. A(sp)'s condition 2 lets a handler certify a
// generation from its own step count when the network's delay uncertainty
// u = d2 - d1 is small; condition 1 falls back to explicit acknowledgements.
//
// Run with:
//
//	go run ./examples/eventdriven
package main

import (
	"context"
	"fmt"
	"log"

	"sessionproblem"
)

func main() {
	const (
		handlers    = 5
		generations = 6
		c1          = 2 // interrupt latency floor (ticks)
	)
	ctx := context.Background()

	fmt.Printf("device mesh: %d interrupt handlers, %d barrier generations\n\n", handlers, generations)
	fmt.Println("delay window [d1,d2]   worst time   per-gen   paper U (gamma-based)")

	// Sweep the network's delay uncertainty: tight windows let condition 2
	// (local step counting) certify generations; wide windows force
	// condition 1 (acknowledgement collection).
	for _, window := range []struct{ d1, d2 sessionproblem.Ticks }{
		{24, 24}, // u = 0: deterministic bus
		{16, 24}, // small u
		{8, 24},  // medium u
		{0, 24},  // u = d2: fully uncertain
	} {
		var worst, worstGamma sessionproblem.Ticks
		for _, strategy := range sessionproblem.Strategies() {
			for seed := uint64(1); seed <= 3; seed++ {
				rep, err := sessionproblem.Solve(ctx,
					sessionproblem.Sporadic, sessionproblem.MessagePassing,
					sessionproblem.WithSpec(generations, handlers),
					sessionproblem.WithStepBounds(c1, 10),
					sessionproblem.WithDelayBounds(window.d1, window.d2),
					sessionproblem.WithGapCap(3*c1),
					sessionproblem.WithSchedule(strategy, seed))
				if err != nil {
					log.Fatalf("[%v,%v] %v seed %d: %v", window.d1, window.d2, strategy, seed, err)
				}
				if rep.Finish > worst {
					worst, worstGamma = rep.Finish, rep.Gamma
				}
			}
		}
		env, err := sessionproblem.PaperEnvelope(
			sessionproblem.Sporadic, sessionproblem.MessagePassing,
			sessionproblem.WithSpec(generations, handlers),
			sessionproblem.WithStepBounds(c1, 10),
			sessionproblem.WithDelayBounds(window.d1, window.d2),
			sessionproblem.WithGamma(worstGamma))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  [%2v,%2v] (u=%2v)        %5v        %5.1f     %.0f\n",
			window.d1, window.d2, window.d2-window.d1,
			worst, float64(worst)/float64(generations), env.Upper)
	}

	fmt.Println("\nshape check: tighter delay windows -> cheaper generations")
	fmt.Println("(the paper: u->0 behaves synchronously, u->d2 asynchronously)")
}
