// Modelcompare: run the right algorithm for every one of the paper's five
// timing models on the same (s, n)-session instance and print the resulting
// hierarchy — the paper's central qualitative claim is that the periodic
// model sits between synchronous (no communication) and asynchronous (one
// communication per session), with semi-synchronous and sporadic
// interpolating according to their constants.
//
// Run with:
//
//	go run ./examples/modelcompare
package main

import (
	"fmt"
	"log"
	"os"

	"sessionproblem/internal/harness"
)

func main() {
	cfg := harness.Default()
	fmt.Printf("(s=%d, n=%d)-session problem across all five timing models\n", cfg.S, cfg.N)
	fmt.Printf("constants: c1=%v c2=%v (cmin=%v cmax=%v) d1=%v d2=%v b=%d\n\n",
		cfg.C1, cfg.C2, cfg.Cmin, cfg.Cmax, cfg.D1, cfg.D2, cfg.B)

	rows, err := harness.Hierarchy(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if err := harness.WriteHierarchy(os.Stdout, rows); err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nfull Table 1 at the same constants:")
	cells, err := harness.Table1(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if err := harness.WriteTable(os.Stdout, cells); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nreading guide: communication needed per session is what separates the rows —")
	fmt.Println("none (synchronous), one total (periodic), min(wait, one-per-session)")
	fmt.Println("(semi-synchronous/sporadic), one per session (asynchronous).")
}
