// Modelcompare: run the right algorithm for every one of the paper's five
// timing models on the same (s, n)-session instance — through the public
// sessionproblem API — and print the resulting hierarchy. The paper's
// central qualitative claim is that the periodic model sits between
// synchronous (no communication) and asynchronous (one communication per
// session), with semi-synchronous and sporadic interpolating according to
// their constants.
//
// The full run matrix executes on the parallel engine (WithParallelism);
// the engine stats printed at the end show the fan-out accounting.
//
// Run with:
//
//	go run ./examples/modelcompare
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"runtime"

	"sessionproblem"
)

func main() {
	ctx := context.Background()

	fmt.Println("(s=6, n=8)-session problem across all five timing models")
	fmt.Println("constants: c1=2 c2=10 (cmin=2 cmax=10) d1=4 d2=28 b=3 (library defaults)")
	fmt.Println()

	hier, err := sessionproblem.Hierarchy(ctx,
		sessionproblem.WithParallelism(runtime.NumCPU()))
	if err != nil {
		log.Fatal(err)
	}
	if err := sessionproblem.WriteHierarchy(os.Stdout, hier.Rows); err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nfull Table 1 at the same constants:")
	table, err := sessionproblem.Table1(ctx,
		sessionproblem.WithParallelism(runtime.NumCPU()))
	if err != nil {
		log.Fatal(err)
	}
	if err := sessionproblem.WriteTable(os.Stdout, table.Cells); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nengine: %d runs on %d workers, %d process steps, %d sessions, %d broadcasts\n",
		table.Stats.Runs, table.Stats.Parallelism,
		table.Stats.Steps, table.Stats.Sessions, table.Stats.Messages)
	fmt.Println("\nreading guide: communication needed per session is what separates the rows —")
	fmt.Println("none (synchronous), one total (periodic), min(wait, one-per-session)")
	fmt.Println("(semi-synchronous/sporadic), one per session (asynchronous).")
}
