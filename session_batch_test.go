package sessionproblem_test

import (
	"bytes"
	"context"
	"testing"

	"sessionproblem"
	"sessionproblem/wire"
)

// renderTable1 runs the full Table-1 matrix under the given options and
// returns the canonical wire bytes plus the call's stats.
func renderTable1(t *testing.T, opts ...sessionproblem.Option) ([]byte, sessionproblem.Stats) {
	t.Helper()
	res, err := sessionproblem.Table1(context.Background(), opts...)
	if err != nil {
		t.Fatalf("Table1: %v", err)
	}
	data, err := wire.MarshalTable(res.Cells)
	if err != nil {
		t.Fatalf("MarshalTable: %v", err)
	}
	return data, res.Stats
}

// TestSeedBatchingGolden is the golden determinism gate for the batched
// executor: the full Table-1 matrix must produce byte-identical wire output
// batched and sequential, at parallelism 1 and N, and on a cache-warm
// repeat — while the stats confirm the batch layer actually ran.
func TestSeedBatchingGolden(t *testing.T) {
	base := []sessionproblem.Option{
		sessionproblem.WithSpec(2, 3),
		sessionproblem.WithSeeds(3),
	}
	seq, seqStats := renderTable1(t, append(base,
		sessionproblem.WithSeedBatching(false), sessionproblem.WithParallelism(1))...)
	if seqStats.BatchLanes+seqStats.BatchForks+seqStats.BatchFallbacks != 0 {
		t.Errorf("sequential mode reported batch activity: %+v", seqStats)
	}
	for _, par := range []int{1, 8} {
		got, stats := renderTable1(t, append(base,
			sessionproblem.WithSeedBatching(true), sessionproblem.WithParallelism(par))...)
		if !bytes.Equal(got, seq) {
			t.Errorf("batched output at parallelism %d differs from sequential:\nbatched:    %s\nsequential: %s", par, got, seq)
		}
		if stats.BatchLanes+stats.BatchForks == 0 {
			t.Errorf("batched mode at parallelism %d did no batching: %+v", par, stats)
		}
	}

	// Cache-warm repeat: every seed is a cache hit, so the batch layer stays
	// idle and the bytes still match.
	cache := sessionproblem.NewRunCache()
	cold, _ := renderTable1(t, append(base, sessionproblem.WithRunCache(cache))...)
	warm, warmStats := renderTable1(t, append(base, sessionproblem.WithRunCache(cache))...)
	if !bytes.Equal(cold, warm) {
		t.Errorf("cache-warm output differs from cold:\ncold: %s\nwarm: %s", cold, warm)
	}
	if !bytes.Equal(cold, seq) {
		t.Errorf("cached batched output differs from sequential")
	}
	if warmStats.BatchLanes+warmStats.BatchForks+warmStats.BatchFallbacks != 0 {
		t.Errorf("cache-warm call reported batch activity: %+v", warmStats)
	}
	if warmStats.CacheHits == 0 {
		t.Errorf("cache-warm call reported no cache hits: %+v", warmStats)
	}
}

// TestSeedBatchingSweepGolden extends the byte-identity gate to the sweep
// path, whose seed spans flow through the same batch runner.
func TestSeedBatchingSweepGolden(t *testing.T) {
	base := []sessionproblem.Option{
		sessionproblem.WithSpec(2, 3),
		sessionproblem.WithSeeds(3),
		sessionproblem.WithSweepSteps(3),
	}
	render := func(batching bool, par int) []byte {
		opts := append(base,
			sessionproblem.WithSeedBatching(batching), sessionproblem.WithParallelism(par))
		res, err := sessionproblem.Sweep(context.Background(), sessionproblem.SweepSporadicDelay, opts...)
		if err != nil {
			t.Fatalf("Sweep: %v", err)
		}
		data, err := wire.MarshalSweep(res.Points)
		if err != nil {
			t.Fatalf("MarshalSweep: %v", err)
		}
		return data
	}
	seq := render(false, 1)
	for _, par := range []int{1, 8} {
		if got := render(true, par); !bytes.Equal(got, seq) {
			t.Errorf("batched sweep at parallelism %d differs from sequential:\nbatched:    %s\nsequential: %s", par, got, seq)
		}
	}
}
